//! The immutable fixed-size hash table persisted as an LSM (sub-)level.

use std::sync::Arc;

use kvapi::{KvError, Result};
use pmem_sim::{PRegion, PmemDevice, ThreadCtx};

use crate::slot::{Slot, SLOT_BYTES};

/// Size of the persisted, 256B-aligned table header.
pub const TABLE_HEADER_BYTES: usize = 256;

const MAGIC: u64 = 0x4348_414D_5F54_4231; // "CHAM_TB1"

/// Decoded header of a persisted table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableHeader {
    /// Slot capacity.
    pub num_slots: u64,
    /// Occupied slots (live + tombstones).
    pub num_entries: u64,
    /// Owning shard.
    pub shard: u32,
    /// LSM level the table was written into.
    pub level: u32,
    /// Per-shard monotonic table number — higher means newer, which is how
    /// recovery re-establishes sub-level search order.
    pub table_seq: u64,
    /// Highest log sequence number contained (the MemTable-recovery
    /// checkpoint of §2.1).
    pub max_log_seq: u64,
}

impl TableHeader {
    fn encode(&self) -> [u8; TABLE_HEADER_BYTES] {
        let mut out = [0u8; TABLE_HEADER_BYTES];
        out[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        out[8..16].copy_from_slice(&self.num_slots.to_le_bytes());
        out[16..24].copy_from_slice(&self.num_entries.to_le_bytes());
        out[24..28].copy_from_slice(&self.shard.to_le_bytes());
        out[28..32].copy_from_slice(&self.level.to_le_bytes());
        out[32..40].copy_from_slice(&self.table_seq.to_le_bytes());
        out[40..48].copy_from_slice(&self.max_log_seq.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        let magic = u64::from_le_bytes(buf[0..8].try_into().expect("header bytes"));
        if magic != MAGIC {
            return Err(KvError::Corrupt("table magic"));
        }
        Ok(Self {
            num_slots: u64::from_le_bytes(buf[8..16].try_into().expect("header bytes")),
            num_entries: u64::from_le_bytes(buf[16..24].try_into().expect("header bytes")),
            shard: u32::from_le_bytes(buf[24..28].try_into().expect("header bytes")),
            level: u32::from_le_bytes(buf[28..32].try_into().expect("header bytes")),
            table_seq: u64::from_le_bytes(buf[32..40].try_into().expect("header bytes")),
            max_log_seq: u64::from_le_bytes(buf[40..48].try_into().expect("header bytes")),
        })
    }
}

/// An immutable linear-probing hash table on persistent memory.
///
/// Layout: one 256B header followed by `num_slots` 16-byte slots. Tables are
/// built in DRAM by a [`TableBuilder`] and written with large sequential
/// stores — the whole point of the paper's design is that index data reaches
/// the Pmem only in this form, fully utilising the 256B write unit (§2.1).
#[derive(Debug, Clone)]
pub struct FixedHashTable {
    region: PRegion,
    header: TableHeader,
}

impl FixedHashTable {
    /// Opens (and validates) a table previously persisted at `region`.
    ///
    /// Charges one random device read for the header — this is the cheap
    /// part of recovery.
    pub fn open(dev: &PmemDevice, ctx: &mut ThreadCtx, region: PRegion) -> Result<Self> {
        let mut buf = [0u8; TABLE_HEADER_BYTES];
        dev.read(ctx, region.off, &mut buf);
        let header = TableHeader::decode(&buf)?;
        let expect = TABLE_HEADER_BYTES as u64 + header.num_slots * SLOT_BYTES as u64;
        if expect > region.len {
            return Err(KvError::Corrupt("table region too small for header"));
        }
        Ok(Self { region, header })
    }

    /// The table's header metadata.
    pub fn header(&self) -> &TableHeader {
        &self.header
    }

    /// The persistent region backing this table.
    pub fn region(&self) -> PRegion {
        self.region
    }

    /// Occupied entries.
    pub fn num_entries(&self) -> u64 {
        self.header.num_entries
    }

    /// Total persistent bytes.
    pub fn bytes(&self) -> u64 {
        TABLE_HEADER_BYTES as u64 + self.header.num_slots * SLOT_BYTES as u64
    }

    /// Looks up `hash` by linear probing.
    ///
    /// Reads one 256B media block (16 slots) per device access: the first
    /// access pays the device's random-read latency, continuation blocks
    /// are charged bandwidth-only (XPBuffer locality), matching how a real
    /// implementation scans adjacent cache lines.
    pub fn get(&self, dev: &PmemDevice, ctx: &mut ThreadCtx, hash: u64) -> Option<Slot> {
        let n = self.header.num_slots;
        if n == 0 {
            return None;
        }
        let slots_per_block = 256 / SLOT_BYTES; // 16
        let start_idx = hash % n;
        let base = self.region.off + TABLE_HEADER_BYTES as u64;
        let mut block_buf = [0u8; 256];
        let mut loaded_block = u64::MAX;
        let mut first_read = true;
        let mut idx = start_idx;
        for probe in 0..n {
            let block = (idx * SLOT_BYTES as u64) / 256;
            if block != loaded_block {
                let block_off = base + block * 256;
                // The last block of a small table may be short; clamp.
                let avail = ((n * SLOT_BYTES as u64) - block * 256).min(256) as usize;
                if first_read {
                    dev.read(ctx, block_off, &mut block_buf[..avail]);
                    first_read = false;
                } else {
                    dev.read_adjacent(ctx, block_off, &mut block_buf[..avail]);
                }
                loaded_block = block;
            }
            let within = (idx as usize % slots_per_block) * SLOT_BYTES;
            let slot = Slot::decode(&block_buf[within..within + SLOT_BYTES]);
            ctx.charge(ctx.cost.key_cmp_ns);
            if slot.is_empty() {
                return None;
            }
            if slot.hash == hash {
                return Some(slot);
            }
            idx = (idx + 1) % n;
            let _ = probe;
        }
        None
    }

    /// Streams every occupied slot (sequential read of the whole table).
    ///
    /// Used by compactions that cannot be served from the ABI, by
    /// Pmem-LSM-PinK to build its DRAM copies, and by ChameleonDB's
    /// post-restart ABI rebuild.
    pub fn iter_entries(&self, dev: &PmemDevice, ctx: &mut ThreadCtx) -> Vec<Slot> {
        let total = (self.header.num_slots * SLOT_BYTES as u64) as usize;
        let base = self.region.off + TABLE_HEADER_BYTES as u64;
        let mut out = Vec::with_capacity(self.header.num_entries as usize);
        let mut buf = vec![0u8; 64 << 10];
        let mut pos = 0usize;
        let mut first = true;
        while pos < total {
            let take = buf.len().min(total - pos);
            if first {
                dev.read(ctx, base + pos as u64, &mut buf[..take]);
                first = false;
            } else {
                dev.read_seq(ctx, base + pos as u64, &mut buf[..take]);
            }
            for chunk in buf[..take].chunks_exact(SLOT_BYTES) {
                let slot = Slot::decode(chunk);
                if !slot.is_empty() {
                    out.push(slot);
                }
            }
            pos += take;
        }
        out
    }

    /// Frees the table's persistent region.
    pub fn free(self, dev: &PmemDevice) {
        dev.dealloc(self.region.off, self.region.len);
    }

    /// Rewrites one slot's location word in place, for GC repointing.
    ///
    /// Probes for `hash` exactly like [`FixedHashTable::get`]; if the slot
    /// is found and its location (tombstone bit aside) equals `old_loc`,
    /// the 8-byte word is rewritten to `new_loc` with the tombstone bit
    /// preserved. The word is 8-byte aligned so the store is atomic at
    /// crash granularity: recovery sees either the old or the new location,
    /// never a torn mix.
    ///
    /// Issues a non-temporal store but **no fence** — the caller batches
    /// repoints across an extent and fences once before declaring the GC
    /// commit durable.
    pub fn repoint_slot(
        &self,
        dev: &PmemDevice,
        ctx: &mut ThreadCtx,
        hash: u64,
        old_loc: u64,
        new_loc: u64,
    ) -> bool {
        use crate::slot::TOMBSTONE_BIT;
        let n = self.header.num_slots;
        if n == 0 {
            return false;
        }
        let base = self.region.off + TABLE_HEADER_BYTES as u64;
        let mut idx = hash % n;
        let mut buf = [0u8; SLOT_BYTES];
        let mut first = true;
        for _ in 0..n {
            let off = base + idx * SLOT_BYTES as u64;
            if first {
                dev.read(ctx, off, &mut buf);
                first = false;
            } else {
                dev.read_adjacent(ctx, off, &mut buf);
            }
            let slot = Slot::decode(&buf);
            ctx.charge(ctx.cost.key_cmp_ns);
            if slot.is_empty() {
                return false;
            }
            if slot.hash == hash {
                if slot.loc & !TOMBSTONE_BIT != old_loc & !TOMBSTONE_BIT {
                    return false;
                }
                let tomb = slot.loc & TOMBSTONE_BIT;
                let word = (new_loc & !TOMBSTONE_BIT) | tomb;
                dev.write_nt(ctx, off + 8, &word.to_le_bytes());
                return true;
            }
            idx = (idx + 1) % n;
        }
        false
    }
}

/// Builds an immutable table in DRAM, then persists it in one sequential
/// sweep.
///
/// Insertion order is *newest first*: an insert whose hash is already
/// staged is skipped, which is how compactions deduplicate overwritten
/// keys. CPU work (staging probes) is charged to the builder's caller —
/// this is the compaction CPU cost the paper discusses in §3.3.
#[derive(Debug)]
pub struct TableBuilder {
    slots: Vec<Slot>,
    num_slots: u64,
    entries: u64,
    max_log_seq: u64,
    /// Set when a tombstone was staged with `drop_tombstone`: the final
    /// image is re-hashed without tombstones at [`TableBuilder::build`].
    prune_tombstones: bool,
    /// Slots this build drops from the index: older duplicates shadowed
    /// by a newer staged version, and tombstones pruned from a last-level
    /// image. Once the merge commits (sources freed) nothing references
    /// these log entries, so the committer credits them as dead bytes.
    /// Whole slots (not bare location words) so the committer can verify
    /// each against the log — a long-shadowed version's extent may have
    /// been garbage-collected since, leaving the slot stale.
    dropped: Vec<Slot>,
}

impl TableBuilder {
    /// Creates a builder with exactly `num_slots` slots (callers size this
    /// from entry count and load factor; it need not be a power of two).
    pub fn new(num_slots: usize) -> Self {
        Self {
            slots: vec![Slot::EMPTY; num_slots.max(1)],
            num_slots: num_slots.max(1) as u64,
            entries: 0,
            max_log_seq: 0,
            prune_tombstones: false,
            dropped: Vec::new(),
        }
    }

    /// Sizes a builder for `entries` items at `load_factor`, rounding the
    /// byte size up to a whole 256B block.
    pub fn sized_for(entries: usize, load_factor: f64) -> Self {
        let raw = ((entries as f64 / load_factor).ceil() as usize).max(16);
        let bytes = (raw * SLOT_BYTES).div_ceil(256) * 256;
        Self::new(bytes / SLOT_BYTES)
    }

    /// Number of staged entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> u64 {
        self.num_slots
    }

    /// Records the highest log sequence number this table will cover.
    pub fn note_seq(&mut self, seq: u64) {
        self.max_log_seq = self.max_log_seq.max(seq);
    }

    /// Stages one slot. Returns `false` if the hash was already present
    /// (the staged, newer version wins) or `Err` if the table is full.
    ///
    /// `drop_tombstone` should be true only when building the *last* level:
    /// once the merge is complete nothing below the output can hold the
    /// key, so the tombstone need not be persisted. The tombstone is still
    /// *staged* — callers stream sources newest-first and a merge's older
    /// sources (dumped tables, the previous last level) may carry versions
    /// the tombstone must shadow — and is pruned from the image by
    /// [`TableBuilder::build`]. (Dropping it immediately here instead used
    /// to let the old last level resurrect deleted keys.)
    pub fn insert(
        &mut self,
        ctx: &mut ThreadCtx,
        slot: Slot,
        drop_tombstone: bool,
    ) -> Result<bool> {
        debug_assert!(!slot.is_empty());
        let mut idx = (slot.hash % self.num_slots) as usize;
        // The image under construction streams through the cache.
        ctx.charge(ctx.cost.dram_l2_ns);
        for probe in 0..self.slots.len() {
            if probe > 0 {
                ctx.charge(ctx.cost.key_cmp_ns + ctx.cost.dram_seq_line_ns);
            }
            let cur = self.slots[idx];
            if cur.is_empty() {
                if slot.is_tombstone() && drop_tombstone {
                    // Staged only to shadow older sources; `build` prunes
                    // it from the image, so its log entry dies with this
                    // merge.
                    self.prune_tombstones = true;
                    self.dropped.push(slot);
                }
                self.slots[idx] = slot;
                self.entries += 1;
                return Ok(true);
            }
            if cur.hash == slot.hash {
                // Already staged by a newer source — the older version's
                // log entry leaves the index when this merge commits.
                self.dropped.push(slot);
                return Ok(false);
            }
            idx = (idx + 1) % self.slots.len();
        }
        Err(KvError::Full("table builder"))
    }

    /// Slots dropped so far (older duplicates and to-be-pruned
    /// tombstones). See the field doc; exposed for dead-byte crediting.
    pub fn dropped_slots(&self) -> &[Slot] {
        &self.dropped
    }

    /// Persists the staged table: header + slots, written sequentially with
    /// non-temporal stores and a single trailing fence.
    pub fn build(
        self,
        dev: &Arc<PmemDevice>,
        ctx: &mut ThreadCtx,
        shard: u32,
        level: u32,
        table_seq: u64,
    ) -> Result<FixedHashTable> {
        self.build_and_drops(dev, ctx, shard, level, table_seq)
            .map(|(t, _)| t)
    }

    /// Like [`TableBuilder::build`], but also returns the slots the merge
    /// dropped from the index, for the committer to credit as dead log
    /// bytes (after validating residency) once the source tables are
    /// freed.
    pub fn build_and_drops(
        mut self,
        dev: &Arc<PmemDevice>,
        ctx: &mut ThreadCtx,
        shard: u32,
        level: u32,
        table_seq: u64,
    ) -> Result<(FixedHashTable, Vec<Slot>)> {
        if self.prune_tombstones {
            // Tombstones were staged only to shadow older sources during
            // the merge; re-hash the survivors so the persisted image holds
            // no tombstones and no broken probe chains.
            let live: Vec<Slot> = self
                .slots
                .iter()
                .copied()
                .filter(|s| !s.is_empty() && !s.is_tombstone())
                .collect();
            self.slots.fill(Slot::EMPTY);
            self.entries = 0;
            for slot in live {
                let mut idx = (slot.hash % self.num_slots) as usize;
                ctx.charge(ctx.cost.dram_l2_ns);
                while !self.slots[idx].is_empty() {
                    idx = (idx + 1) % self.slots.len();
                }
                self.slots[idx] = slot;
                self.entries += 1;
            }
        }
        let header = TableHeader {
            num_slots: self.num_slots,
            num_entries: self.entries,
            shard,
            level,
            table_seq,
            max_log_seq: self.max_log_seq,
        };
        let bytes = TABLE_HEADER_BYTES as u64 + self.num_slots * SLOT_BYTES as u64;
        let region = dev.alloc_region(bytes)?;
        dev.write_nt(ctx, region.off, &header.encode());
        // Stream the slot array in 16KB chunks to bound the copy buffer.
        let base = region.off + TABLE_HEADER_BYTES as u64;
        let mut chunk = Vec::with_capacity(16 << 10);
        let mut written = 0u64;
        for slot in &self.slots {
            chunk.extend_from_slice(&slot.encode());
            if chunk.len() >= 16 << 10 {
                dev.write_nt(ctx, base + written, &chunk);
                written += chunk.len() as u64;
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            dev.write_nt(ctx, base + written, &chunk);
        }
        dev.fence(ctx);
        Ok((FixedHashTable { region, header }, self.dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::hash64;

    fn setup() -> (Arc<PmemDevice>, ThreadCtx) {
        (PmemDevice::optane(16 << 20), ThreadCtx::with_default_cost())
    }

    fn build_with(
        dev: &Arc<PmemDevice>,
        ctx: &mut ThreadCtx,
        keys: impl Iterator<Item = (u64, u64)>,
        slots: usize,
    ) -> FixedHashTable {
        let mut b = TableBuilder::new(slots);
        for (k, loc) in keys {
            b.insert(ctx, Slot::new(hash64(k), loc), false).unwrap();
        }
        b.build(dev, ctx, 0, 0, 1).unwrap()
    }

    #[test]
    fn build_then_get_all_keys() {
        let (dev, mut ctx) = setup();
        let t = build_with(&dev, &mut ctx, (1..=100u64).map(|k| (k, k * 7)), 160);
        for k in 1..=100u64 {
            let s = t.get(&dev, &mut ctx, hash64(k)).expect("present");
            assert_eq!(s.loc, k * 7);
        }
        assert!(t.get(&dev, &mut ctx, hash64(5000)).is_none());
        assert_eq!(t.num_entries(), 100);
    }

    #[test]
    fn newest_first_dedup() {
        let (dev, mut ctx) = setup();
        let mut b = TableBuilder::new(32);
        let h = hash64(9);
        assert!(b.insert(&mut ctx, Slot::new(h, 111), false).unwrap());
        assert!(!b.insert(&mut ctx, Slot::new(h, 222), false).unwrap());
        let t = b.build(&dev, &mut ctx, 0, 0, 1).unwrap();
        assert_eq!(t.get(&dev, &mut ctx, h).unwrap().loc, 111);
    }

    #[test]
    fn tombstones_dropped_only_when_requested() {
        let (dev, mut ctx) = setup();
        let h = hash64(3);
        let mut keep = TableBuilder::new(16);
        assert!(keep.insert(&mut ctx, Slot::tombstone(h, 5), false).unwrap());
        let t = keep.build(&dev, &mut ctx, 0, 0, 1).unwrap();
        assert_eq!(t.num_entries(), 1);
        assert!(t.get(&dev, &mut ctx, h).unwrap().is_tombstone());
        let mut drop_b = TableBuilder::new(16);
        assert!(drop_b
            .insert(&mut ctx, Slot::tombstone(h, 5), true)
            .unwrap());
        let t = drop_b.build(&dev, &mut ctx, 0, 0, 2).unwrap();
        assert_eq!(t.num_entries(), 0);
        assert!(t.get(&dev, &mut ctx, h).is_none());
    }

    /// Regression: a last-level merge streams sources newest-first, so a
    /// tombstone staged with `drop_tombstone` must still shadow an older
    /// source's version of the same key — dropping it immediately let the
    /// previous last level resurrect deleted keys. The tombstone shadows
    /// during staging and is pruned from the built image.
    #[test]
    fn dropped_tombstone_still_shadows_older_sources() {
        let (dev, mut ctx) = setup();
        let ha = hash64(7);
        let hb = hash64(8);
        let mut b = TableBuilder::new(32);
        // Newest source: key A was deleted, key B is live.
        assert!(b.insert(&mut ctx, Slot::tombstone(ha, 0), true).unwrap());
        assert!(b.insert(&mut ctx, Slot::new(hb, 200), true).unwrap());
        // Older source (the previous last level) still holds key A.
        assert!(!b.insert(&mut ctx, Slot::new(ha, 100), true).unwrap());
        assert!(!b.insert(&mut ctx, Slot::new(hb, 150), true).unwrap());
        let t = b.build(&dev, &mut ctx, 0, 3, 9).unwrap();
        // Key A stays deleted, key B keeps the newest location, and the
        // probe chains survive the prune.
        assert!(t.get(&dev, &mut ctx, ha).is_none());
        assert_eq!(t.get(&dev, &mut ctx, hb).unwrap().loc, 200);
        assert_eq!(t.num_entries(), 1);
    }

    #[test]
    fn open_validates_and_roundtrips_header() {
        let (dev, mut ctx) = setup();
        let t = build_with(&dev, &mut ctx, (1..=10u64).map(|k| (k, k)), 32);
        let reopened = FixedHashTable::open(&dev, &mut ctx, t.region()).unwrap();
        assert_eq!(reopened.header(), t.header());
        // Garbage region fails validation.
        let junk = dev.alloc_region(1024).unwrap();
        assert!(matches!(
            FixedHashTable::open(&dev, &mut ctx, junk),
            Err(KvError::Corrupt(_))
        ));
    }

    #[test]
    fn table_survives_crash() {
        let (dev, mut ctx) = setup();
        let t = build_with(&dev, &mut ctx, (1..=50u64).map(|k| (k, k + 1)), 128);
        dev.crash();
        let reopened = FixedHashTable::open(&dev, &mut ctx, t.region()).unwrap();
        for k in 1..=50u64 {
            assert_eq!(reopened.get(&dev, &mut ctx, hash64(k)).unwrap().loc, k + 1);
        }
    }

    #[test]
    fn iter_entries_returns_every_slot() {
        let (dev, mut ctx) = setup();
        let t = build_with(&dev, &mut ctx, (1..=64u64).map(|k| (k, k * 2)), 128);
        let mut locs: Vec<u64> = t
            .iter_entries(&dev, &mut ctx)
            .iter()
            .map(|s| s.loc)
            .collect();
        locs.sort_unstable();
        assert_eq!(locs, (1..=64).map(|k| k * 2).collect::<Vec<_>>());
    }

    #[test]
    fn build_writes_are_sequential_full_blocks() {
        let (dev, mut ctx) = setup();
        dev.stats().reset();
        let _t = build_with(&dev, &mut ctx, (1..=1000u64).map(|k| (k, k)), 2048);
        let s = dev.stats().snapshot();
        // Table is a contiguous 256B-aligned image: no RMW blocks at all.
        assert_eq!(
            s.rmw_blocks, 0,
            "table flush must not do partial-block writes"
        );
        let expected = TABLE_HEADER_BYTES as u64 + 2048 * 16;
        assert_eq!(s.media_bytes_written, expected);
    }

    #[test]
    fn builder_sized_for_rounds_to_blocks() {
        let b = TableBuilder::sized_for(100, 0.75);
        // ceil(100/0.75)=134 slots = 2144B -> rounds to 2304B = 144 slots.
        assert_eq!(b.capacity() % 16, 0);
        assert!(b.capacity() >= 134);
    }

    #[test]
    fn full_builder_errors() {
        let mut ctx = ThreadCtx::with_default_cost();
        let mut b = TableBuilder::new(4);
        for k in 0..4u64 {
            b.insert(&mut ctx, Slot::new(hash64(k), k + 1), false)
                .unwrap();
        }
        assert!(matches!(
            b.insert(&mut ctx, Slot::new(hash64(99), 1), false),
            Err(KvError::Full(_))
        ));
    }

    #[test]
    fn get_probes_cross_block_boundaries() {
        let (dev, mut ctx) = setup();
        // Tiny table with forced collisions: hashes chosen to collide at
        // slot positions near the block boundary.
        let n = 32u64; // 2 media blocks of slots
        let mut b = TableBuilder::new(n as usize);
        // All slots in block 0 occupied with hashes landing at index 14.
        let hashes: Vec<u64> = (0..6u64).map(|i| 14 + i * n).collect();
        for (i, &h) in hashes.iter().enumerate() {
            b.insert(&mut ctx, Slot::new(h, (i + 1) as u64), false)
                .unwrap();
        }
        let t = b.build(&dev, &mut ctx, 0, 0, 1).unwrap();
        // The last inserted hash probes past index 15 into block 1.
        let s = t.get(&dev, &mut ctx, hashes[5]).unwrap();
        assert_eq!(s.loc, 6);
    }

    #[test]
    fn build_reports_dropped_locations() {
        let (dev, mut ctx) = setup();
        let ha = hash64(1);
        let hb = hash64(2);
        let mut b = TableBuilder::new(32);
        // Newest source: A deleted (tombstone at loc 900), B live at 200.
        assert!(b.insert(&mut ctx, Slot::tombstone(ha, 900), true).unwrap());
        assert!(b.insert(&mut ctx, Slot::new(hb, 200), true).unwrap());
        // Older source still holds A at 100 and B at 150 — both shadowed.
        assert!(!b.insert(&mut ctx, Slot::new(ha, 100), true).unwrap());
        assert!(!b.insert(&mut ctx, Slot::new(hb, 150), true).unwrap());
        let (t, mut drops) = b.build_and_drops(&dev, &mut ctx, 0, 3, 1).unwrap();
        // The pruned tombstone and both shadowed versions die with the
        // merge; the surviving B@200 does not. Each drop keeps its hash so
        // the committer can validate the credit against the log.
        drops.sort_unstable_by_key(|s| s.loc);
        let expect_tomb = 900 | crate::slot::TOMBSTONE_BIT;
        assert_eq!(
            drops,
            vec![
                Slot::new(ha, 100),
                Slot::new(hb, 150),
                Slot {
                    hash: ha,
                    loc: expect_tomb
                },
            ]
        );
        assert_eq!(t.num_entries(), 1);
    }

    #[test]
    fn repoint_slot_rewrites_persistently() {
        let (dev, mut ctx) = setup();
        let h = hash64(42);
        let ht = hash64(43);
        let mut b = TableBuilder::new(32);
        b.insert(&mut ctx, Slot::new(h, 111), false).unwrap();
        b.insert(&mut ctx, Slot::tombstone(ht, 300), false).unwrap();
        let t = b.build(&dev, &mut ctx, 0, 0, 1).unwrap();
        // Wrong old location refuses.
        assert!(!t.repoint_slot(&dev, &mut ctx, h, 999, 555));
        assert_eq!(t.get(&dev, &mut ctx, h).unwrap().loc, 111);
        // Matching old location rewrites; caller fences the batch.
        assert!(t.repoint_slot(&dev, &mut ctx, h, 111, 555));
        assert!(t.repoint_slot(&dev, &mut ctx, ht, 300, 400));
        dev.fence(&mut ctx);
        assert_eq!(t.get(&dev, &mut ctx, h).unwrap().loc, 555);
        let ts = t.get(&dev, &mut ctx, ht).unwrap();
        assert!(ts.is_tombstone());
        assert_eq!(ts.location(), 400);
        // Survives a crash after the fence.
        dev.crash();
        let reopened = FixedHashTable::open(&dev, &mut ctx, t.region()).unwrap();
        assert_eq!(reopened.get(&dev, &mut ctx, h).unwrap().loc, 555);
        // Missing hash is a no-op.
        assert!(!reopened.repoint_slot(&dev, &mut ctx, hash64(777), 1, 2));
    }

    #[test]
    fn free_returns_space_for_reuse() {
        let (dev, mut ctx) = setup();
        let t = build_with(&dev, &mut ctx, (1..=10u64).map(|k| (k, k)), 32);
        let region = t.region();
        let before = dev.allocated_bytes();
        t.free(&dev);
        assert!(dev.allocated_bytes() < before);
        let again = dev.alloc_region(region.len).unwrap();
        assert_eq!(again.off, region.off);
    }
}
