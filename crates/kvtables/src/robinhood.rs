//! Growable robin-hood hash map (Dram-Hash baseline index).

use pmem_sim::ThreadCtx;

use crate::slot::{Slot, SLOT_BYTES};

/// An open-addressing robin-hood map from key hash to location word.
///
/// Models the `martinus/robin-hood-hashing` table the paper uses for its
/// Dram-Hash baseline (§3.2): probe-distance-ordered insertion, backward-
/// shift deletion, and doubling growth with full rehash. The rehash is
/// charged per moved entry, which is what produces Dram-Hash's multi-second
/// worst-case put latency in Table 2.
#[derive(Debug, Clone)]
pub struct RobinHoodMap {
    slots: Vec<Slot>,
    mask: u64,
    len: usize,
    max_load: f64,
    /// Simulated ns spent in the most recent rehash (0 if none yet).
    last_rehash_ns: u64,
}

impl RobinHoodMap {
    /// Creates a map with space for at least `capacity` entries before the
    /// first growth.
    pub fn new(capacity: usize) -> Self {
        let n = (capacity.max(8) * 5 / 4).next_power_of_two();
        Self {
            slots: vec![Slot::EMPTY; n],
            mask: (n - 1) as u64,
            len: 0,
            max_load: 0.8,
            last_rehash_ns: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// DRAM bytes of the slot array.
    pub fn dram_bytes(&self) -> u64 {
        (self.slots.len() * SLOT_BYTES) as u64
    }

    /// Simulated time consumed by the most recent growth rehash.
    pub fn last_rehash_ns(&self) -> u64 {
        self.last_rehash_ns
    }

    #[inline]
    fn distance(&self, ideal: u64, idx: usize) -> u64 {
        (idx as u64).wrapping_sub(ideal) & self.mask
    }

    /// Inserts or updates `hash -> loc`; returns the previous location if
    /// the key was present.
    pub fn insert(&mut self, ctx: &mut ThreadCtx, hash: u64, loc: u64) -> Option<u64> {
        debug_assert!(loc != 0);
        if (self.len + 1) as f64 > self.slots.len() as f64 * self.max_load {
            self.grow(ctx);
        }
        let mut cur = Slot::new(hash, loc);
        let mut idx = (hash & self.mask) as usize;
        let mut dist = 0u64;
        ctx.charge(ctx.cost.dram_random_ns);
        loop {
            let existing = self.slots[idx];
            if existing.is_empty() {
                self.slots[idx] = cur;
                self.len += 1;
                return None;
            }
            if existing.hash == cur.hash {
                self.slots[idx] = cur;
                return Some(existing.loc);
            }
            let existing_dist = self.distance(existing.hash & self.mask, idx);
            if existing_dist < dist {
                // Rob the rich: displace the closer-to-home entry.
                self.slots[idx] = cur;
                cur = existing;
                dist = existing_dist;
            }
            idx = (idx + 1) & self.mask as usize;
            dist += 1;
            ctx.charge(ctx.cost.key_cmp_ns + ctx.cost.dram_seq_line_ns);
        }
    }

    /// Looks up `hash`.
    pub fn get(&self, ctx: &mut ThreadCtx, hash: u64) -> Option<u64> {
        let mut idx = (hash & self.mask) as usize;
        let mut dist = 0u64;
        ctx.charge(ctx.cost.dram_random_ns);
        loop {
            let existing = self.slots[idx];
            if existing.is_empty() {
                return None;
            }
            if existing.hash == hash {
                return Some(existing.loc);
            }
            // Robin-hood invariant: once we pass our own distance, the key
            // cannot be further along.
            if self.distance(existing.hash & self.mask, idx) < dist {
                return None;
            }
            idx = (idx + 1) & self.mask as usize;
            dist += 1;
            ctx.charge(ctx.cost.key_cmp_ns + ctx.cost.dram_seq_line_ns);
        }
    }

    /// Removes `hash`, returning its location, using backward-shift
    /// deletion (no tombstones).
    pub fn remove(&mut self, ctx: &mut ThreadCtx, hash: u64) -> Option<u64> {
        let mut idx = (hash & self.mask) as usize;
        let mut dist = 0u64;
        ctx.charge(ctx.cost.dram_random_ns);
        loop {
            let existing = self.slots[idx];
            if existing.is_empty() {
                return None;
            }
            if existing.hash == hash {
                break;
            }
            if self.distance(existing.hash & self.mask, idx) < dist {
                return None;
            }
            idx = (idx + 1) & self.mask as usize;
            dist += 1;
            ctx.charge(ctx.cost.key_cmp_ns + ctx.cost.dram_seq_line_ns);
        }
        let removed = self.slots[idx].loc;
        // Shift the following cluster back until a hole or a home entry.
        loop {
            let next = (idx + 1) & self.mask as usize;
            let n = self.slots[next];
            if n.is_empty() || self.distance(n.hash & self.mask, next) == 0 {
                self.slots[idx] = Slot::EMPTY;
                break;
            }
            self.slots[idx] = n;
            idx = next;
            ctx.charge(ctx.cost.dram_seq_line_ns);
        }
        self.len -= 1;
        Some(removed)
    }

    /// Iterates live entries as `(hash, loc)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| (s.hash, s.loc))
    }

    fn grow(&mut self, ctx: &mut ThreadCtx) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Slot::EMPTY; new_len]);
        self.mask = (self.slots.len() - 1) as u64;
        self.len = 0;
        let start = ctx.clock.now();
        for s in old.into_iter().filter(|s| !s.is_empty()) {
            // Re-insert; charges per-entry DRAM work, so a rehash of N
            // entries costs ~N * dram_random_ns — the paper's 3.23s spike
            // at a billion keys.
            self.insert(ctx, s.hash, s.loc);
        }
        self.last_rehash_ns = ctx.clock.now() - start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::hash64;

    fn ctx() -> ThreadCtx {
        ThreadCtx::with_default_cost()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = RobinHoodMap::new(16);
        let mut c = ctx();
        for k in 1..=100u64 {
            m.insert(&mut c, hash64(k), k * 3);
        }
        assert_eq!(m.len(), 100);
        for k in 1..=100u64 {
            assert_eq!(m.get(&mut c, hash64(k)), Some(k * 3));
        }
        for k in 1..=50u64 {
            assert_eq!(m.remove(&mut c, hash64(k)), Some(k * 3));
        }
        assert_eq!(m.len(), 50);
        for k in 1..=50u64 {
            assert_eq!(m.get(&mut c, hash64(k)), None);
        }
        for k in 51..=100u64 {
            assert_eq!(
                m.get(&mut c, hash64(k)),
                Some(k * 3),
                "key {k} lost by deletion shifts"
            );
        }
    }

    #[test]
    fn update_returns_old_value() {
        let mut m = RobinHoodMap::new(8);
        let mut c = ctx();
        assert_eq!(m.insert(&mut c, hash64(1), 10), None);
        assert_eq!(m.insert(&mut c, hash64(1), 20), Some(10));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries_and_charges_time() {
        let mut m = RobinHoodMap::new(8);
        let mut c = ctx();
        for k in 0..10_000u64 {
            m.insert(&mut c, hash64(k), k + 1);
        }
        assert!(m.last_rehash_ns() > 0, "growth must charge rehash time");
        for k in 0..10_000u64 {
            assert_eq!(m.get(&mut c, hash64(k)), Some(k + 1));
        }
    }

    #[test]
    fn missing_keys_terminate_via_distance_invariant() {
        let mut m = RobinHoodMap::new(1024);
        let mut c = ctx();
        for k in 0..500u64 {
            m.insert(&mut c, hash64(k), k + 1);
        }
        for k in 10_000..10_500u64 {
            assert_eq!(m.get(&mut c, hash64(k)), None);
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let mut m = RobinHoodMap::new(8);
        let mut c = ctx();
        m.insert(&mut c, hash64(1), 5);
        assert_eq!(m.remove(&mut c, hash64(2)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_visits_all() {
        let mut m = RobinHoodMap::new(8);
        let mut c = ctx();
        for k in 0..20u64 {
            m.insert(&mut c, hash64(k), k + 100);
        }
        let mut locs: Vec<u64> = m.iter().map(|(_, l)| l).collect();
        locs.sort_unstable();
        assert_eq!(locs, (100..120).collect::<Vec<_>>());
    }
}
