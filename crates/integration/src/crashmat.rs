//! Crash-matrix fault-injection harness.
//!
//! Exhaustively enumerates power-failure points of a ChameleonDB instance:
//! every durable-state transition happens at a persist fence, so crashing
//! at fence ordinal `k` for every `k` in `1..=total_fences` covers every
//! distinct durable state a real power cut could leave behind. For each
//! point the harness
//!
//! 1. runs a deterministic mixed workload (puts, overwrites, deletes,
//!    syncs, a checkpoint, a Write-Intensive phase, a Get-Protect
//!    phase that forces ABI dumps, and group-commit batches through
//!    [`ChameleonDb::apply_batch`] — the service layer's write path)
//!    against a fresh simulated device, armed to panic-unwind out of
//!    fence `k`;
//! 2. simulates the power cut ([`pmem_sim::PmemDevice::crash`] drops all
//!    unfenced lines), optionally arms a *second* crash a few fences into
//!    recovery itself (the double-crash case), and recovers;
//! 3. audits the recovered store against a shadow model under the
//!    acknowledged-write invariant below.
//!
//! # The invariant: a single log-prefix cut
//!
//! The store has one log writer per thread and this harness drives one
//! thread, so every mutation is assigned a position in one totally-ordered
//! op sequence. A crash may lose an *un-acknowledged* suffix of that
//! sequence — never more. Concretely, for the recovered store there must
//! exist a single cut `C` (number of leading ops whose effects survived)
//! such that
//!
//! * `C >= synced`: every op acknowledged by the last successful
//!   `sync`/`checkpoint` survived (acknowledged writes present with their
//!   latest value, acknowledged deletes still deleted);
//! * `C <= completed + 1`: nothing from the future, where op `completed`
//!   is the op in flight when the crash fired (its log append may or may
//!   not have landed);
//! * every key reads as the newest version with op index `< C` — stale
//!   resurrection (manifest replay of a dead epoch, index ahead of log)
//!   shows up as a key whose observed state admits no cut consistent with
//!   the other keys, and is reported as a violation.
//!
//! Stage attribution comes from the observability layer: the maintenance
//! span open at the moment of the crash ([`chameleon_obs::Obs::
//! current_stage`]) labels the point (flush, mid/last compaction, ABI
//! dump, ...), `"foreground"` labels fences outside any span (log batch
//! fences, manifest appends from the front door), `"create"` labels
//! crashes before the store finished initializing, and nested crashes are
//! labelled `"recovery"`. Each recovered store gets a
//! [`EventKind::CrashInjected`] event in its journal so the crash point is
//! visible through the normal observability exports.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use chameleon_obs::{EventKind, ObsConfig};
use chameleondb::{
    BatchOp, BgConfig, ChameleonConfig, ChameleonDb, CompactionScheme, GpmConfig, Mode,
};
use kvapi::KvStore;
use kvlog::LogConfig;
use pmem_sim::{CrashPoint, PmemDevice, ThreadCtx};
use serde::Serialize;

/// Gets per Get-Protect evaluation window in the matrix store config; the
/// workload's get burst issues twice this many to guarantee entry.
const GPM_WINDOW: u64 = 64;

/// One workload step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WlOp {
    /// Insert/overwrite `key` with a value encoding `(key, op_index)`.
    Put(u64),
    /// Delete `key` (appends a tombstone).
    Del(u64),
    /// Read `key`; checked against the shadow model while pre-crash.
    Get(u64),
    /// `KvStore::sync` — acknowledges everything before it.
    Sync,
    /// Full checkpoint: flush + manifest rewrite; also acknowledges.
    Checkpoint,
    /// Switch the store's base mode (Normal / WriteIntensive).
    SetMode(Mode),
    /// Stage a put into the open group-commit batch (applied at the next
    /// [`WlOp::BatchCommit`]). Scripts must not interleave `Get`s with an
    /// open batch: staged ops are invisible until they commit.
    BatchPut(u64),
    /// Stage a delete into the open group-commit batch.
    BatchDel(u64),
    /// Commit the staged batch through [`ChameleonDb::apply_batch`]: one
    /// tail fence acknowledges the whole batch (plus any mid-batch
    /// auto-fences once the log's `batch_bytes` overflows — crashing at
    /// those leaves a partially persisted batch, which the prefix-cut
    /// audit must accept because no ack was released).
    BatchCommit,
}

/// Matrix parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Unique keys in the initial load phase; scales the whole workload
    /// (and with it the number of fences to enumerate).
    pub keys: u64,
    /// Test every `stride`-th fence ordinal (1 = exhaustive).
    pub stride: u64,
    /// Inject a second crash during recovery on every `nested_every`-th
    /// tested point (0 = never). The nested point is varied
    /// deterministically a few fences into the replay.
    pub nested_every: u64,
    /// Upper-level compaction scheme of the store under test.
    pub scheme: CompactionScheme,
    /// Simulated device capacity.
    pub device_bytes: usize,
    /// Value-log GC slice: shrink the log to 16KB extents and add the
    /// churn phase below, so copy-forward GC passes run inside the
    /// enumerated fence window (torn relocations, repoints, commits and
    /// reclaims all become crash points).
    pub gc: bool,
    /// Overwrite rounds of the churn phase (0 = skip the phase). Each
    /// round re-puts the first quarter of the key space, building up the
    /// dead bytes GC needs.
    pub churn: u64,
}

impl MatrixConfig {
    /// Exhaustive matrix (stride 1) — the `repro crash` default.
    pub fn full(scheme: CompactionScheme) -> Self {
        Self {
            keys: 512,
            stride: 1,
            nested_every: 4,
            scheme,
            device_bytes: 64 << 20,
            gc: false,
            churn: 0,
        }
    }

    /// Bounded matrix for CI: same workload, sparse stride.
    pub fn quick(scheme: CompactionScheme) -> Self {
        Self {
            stride: 9,
            nested_every: 3,
            ..Self::full(scheme)
        }
    }

    /// Exhaustive GC slice: small extents + churn so value-log GC runs
    /// under the crash enumeration.
    pub fn full_gc(scheme: CompactionScheme) -> Self {
        Self {
            gc: true,
            churn: 16,
            ..Self::full(scheme)
        }
    }

    /// Bounded GC slice for CI.
    pub fn quick_gc(scheme: CompactionScheme) -> Self {
        Self {
            gc: true,
            churn: 16,
            ..Self::quick(scheme)
        }
    }
}

/// The store geometry under test: tiny shards so the workload crosses
/// every maintenance path (flush, mid- and last-level compaction, manifest
/// overflow rewrites, WIM merges, GPM ABI dumps) within a few hundred ops.
pub fn store_config(scheme: CompactionScheme) -> ChameleonConfig {
    ChameleonConfig {
        shards: 2,
        memtable_slots: 32,
        levels: 3,
        ratio: 2,
        max_threads: 1,
        max_abi_dumps: 2,
        compaction: scheme,
        // Tiny manifest regions force overflow rewrites (epoch flips).
        manifest_bytes: 2048,
        // Small batches so log fences interleave finely with maintenance.
        log: LogConfig {
            capacity: 16 << 20,
            batch_bytes: 512,
            ..LogConfig::default()
        },
        // Pin Get-Protect on once entered: enter on any get burst, never
        // exit (p99 < 0 is unsatisfiable), so the dump paths stay hot.
        gpm: GpmConfig {
            enabled: true,
            enter_threshold_ns: 1,
            exit_threshold_ns: 0,
            window_ops: GPM_WINDOW,
        },
        obs: ObsConfig::on(),
        // Lock-step background maintenance: flushes/compactions still run
        // on the worker pool (so the matrix exercises the freeze/queue/
        // worker/republish machinery and worker-thread crash unwinding),
        // but each put waits for its own enqueued work, keeping fence
        // ordinals deterministic across the dry and armed runs.
        bg: BgConfig {
            enabled: true,
            workers: 1,
            frozen_queue_cap: 2,
            synchronous: true,
        },
        ..ChameleonConfig::with_shards(2)
    }
}

/// Store geometry for one matrix run: the GC slice shrinks the log to
/// 16KB extents (2MB capacity) so the workload's dead bytes span enough
/// sealed extents for copy-forward GC to trigger mid-script.
pub fn store_config_for(cfg: &MatrixConfig) -> ChameleonConfig {
    let mut sc = store_config(cfg.scheme);
    if cfg.gc {
        sc.log = LogConfig {
            capacity: 2 << 20,
            batch_bytes: 512,
            max_value: 8 << 10,
            extent_bytes: 16 << 10,
        };
    }
    sc
}

/// Builds the deterministic mixed workload for `keys` unique keys.
pub fn build_script(keys: u64) -> Vec<WlOp> {
    build_script_churn(keys, 0)
}

/// Like [`build_script`], with `churn` overwrite rounds spliced in after
/// the overwrite/delete phase (the GC matrix uses this to accumulate
/// mostly-dead sealed extents).
pub fn build_script_churn(keys: u64, churn: u64) -> Vec<WlOp> {
    let n = keys.max(64);
    let mut s = Vec::new();
    // Phase 1: unique load — crosses flushes and upper/last compactions.
    for k in 0..n {
        s.push(WlOp::Put(k));
    }
    s.push(WlOp::Sync);
    // Phase 2: overwrites and deletes — tombstones and version shadowing.
    for k in 0..n / 2 {
        s.push(WlOp::Put(k));
    }
    for k in n / 4..n / 2 {
        s.push(WlOp::Del(k));
    }
    s.push(WlOp::Sync);
    // Phase 2b (GC matrix): repeated overwrites of a fixed key set build
    // dead bytes until value-log GC passes fire under the enumeration.
    for _ in 0..churn {
        for k in 0..n / 4 {
            s.push(WlOp::Put(k));
        }
    }
    if churn > 0 {
        s.push(WlOp::Sync);
    }
    // Phase 3: Write-Intensive Mode — MemTables merge into the ABI.
    s.push(WlOp::SetMode(Mode::WriteIntensive));
    for k in n..n + n / 2 {
        s.push(WlOp::Put(k));
    }
    s.push(WlOp::Sync);
    s.push(WlOp::SetMode(Mode::Normal));
    // Phase 4: get burst trips Get-Protect, then puts force ABI dumps
    // (and, past max_abi_dumps, last-level compactions of dumped tables).
    for i in 0..2 * GPM_WINDOW {
        s.push(WlOp::Get(i % (n / 4).max(1)));
    }
    for k in n + n / 2..2 * n {
        s.push(WlOp::Put(k));
    }
    // Phase 5: checkpoint (manifest rewrite + flip) and traffic past it.
    s.push(WlOp::Checkpoint);
    for k in 0..n / 8 {
        s.push(WlOp::Put(k));
    }
    for k in 0..n / 16 {
        s.push(WlOp::Del(k));
    }
    s.push(WlOp::Sync);
    // Phase 6: group-commit batches (the service layer's write path).
    // Fresh keys first; each batch is large enough to overflow the log's
    // 512B `batch_bytes` several times, so mid-batch auto-fences create
    // crash points with a partially persisted, never-acknowledged batch.
    for k in 2 * n..2 * n + n / 4 {
        s.push(WlOp::BatchPut(k));
    }
    s.push(WlOp::BatchCommit);
    // Overwrites and deletes of batch-written keys in a second batch.
    for k in 2 * n..2 * n + n / 8 {
        s.push(WlOp::BatchPut(k));
    }
    for k in 2 * n + n / 8..2 * n + n / 4 {
        s.push(WlOp::BatchDel(k));
    }
    s.push(WlOp::BatchCommit);
    // Un-acknowledged tail: may be lost, bounded by the log batch.
    for k in 0..8 {
        s.push(WlOp::Put(k));
    }
    s
}

/// One recorded mutation of a key in the shadow model.
#[derive(Debug, Clone, Copy)]
pub struct Version {
    /// Op index in the script.
    pub op: u64,
    /// Tombstone?
    pub del: bool,
}

/// The value a [`WlOp::Put`] at op index `op` writes for `key`.
fn value_of(key: u64, op: u64) -> [u8; 16] {
    let mut v = [0u8; 16];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..].copy_from_slice(&op.to_le_bytes());
    v
}

/// Per-key version histories, derived statically from the script.
pub fn build_model(script: &[WlOp]) -> BTreeMap<u64, Vec<Version>> {
    let mut model: BTreeMap<u64, Vec<Version>> = BTreeMap::new();
    for (i, op) in script.iter().enumerate() {
        match *op {
            WlOp::Put(k) | WlOp::BatchPut(k) => model.entry(k).or_default().push(Version {
                op: i as u64,
                del: false,
            }),
            WlOp::Del(k) | WlOp::BatchDel(k) => model.entry(k).or_default().push(Version {
                op: i as u64,
                del: true,
            }),
            _ => {}
        }
    }
    model
}

/// Runs the script against `db`, tracking progress through the `Cell`s so
/// the caller can read how far it got after an unwind. Live gets are
/// checked against the exact pre-crash model; a mismatch panics (a
/// non-`CrashPoint` payload, re-raised by the harness).
fn exec(
    db: &ChameleonDb,
    ctx: &mut ThreadCtx,
    script: &[WlOp],
    completed: &Cell<u64>,
    synced: &Cell<u64>,
) -> kvapi::Result<()> {
    // key -> Some(op of live put) | None = deleted.
    let mut live: HashMap<u64, Option<u64>> = HashMap::new();
    // Open group-commit batch: ops staged since the last BatchCommit,
    // with their deferred live-map updates (staged ops are invisible to
    // gets until the batch commits).
    let mut staged_ops: Vec<BatchOp> = Vec::new();
    let mut staged_live: Vec<(u64, Option<u64>)> = Vec::new();
    let mut out = Vec::new();
    for (i, op) in script.iter().enumerate() {
        let idx = i as u64;
        match *op {
            WlOp::Put(k) => {
                db.put(ctx, k, &value_of(k, idx))?;
                live.insert(k, Some(idx));
            }
            WlOp::Del(k) => {
                db.delete(ctx, k)?;
                live.insert(k, None);
            }
            WlOp::BatchPut(k) => {
                staged_ops.push(BatchOp::Put {
                    key: k,
                    value: value_of(k, idx).to_vec(),
                });
                staged_live.push((k, Some(idx)));
            }
            WlOp::BatchDel(k) => {
                staged_ops.push(BatchOp::Delete { key: k });
                staged_live.push((k, None));
            }
            WlOp::BatchCommit => {
                db.apply_batch(ctx, &staged_ops)?;
                staged_ops.clear();
                for (k, v) in staged_live.drain(..) {
                    live.insert(k, v);
                }
            }
            WlOp::Get(k) => {
                let found = db.get(ctx, k, &mut out)?;
                match live.get(&k).copied().flatten() {
                    Some(put_op) => assert!(
                        found && out == value_of(k, put_op),
                        "live get of key {k} at op {idx} diverged from model"
                    ),
                    None => assert!(!found, "live get of key {k} at op {idx}: ghost value"),
                }
            }
            WlOp::Sync => db.sync(ctx)?,
            WlOp::Checkpoint => db.checkpoint(ctx)?,
            WlOp::SetMode(m) => db.set_mode(m),
        }
        // Staged batch ops advance `completed` before their log appends
        // happen (at the commit): a loose upper bound on the cut is
        // sound — the audit only requires that nothing *acknowledged* is
        // lost, and staging acknowledges nothing.
        completed.set(idx + 1);
        // `apply_batch` flushes the (single) log writer, so like Sync it
        // acknowledges every op before it.
        if matches!(op, WlOp::Sync | WlOp::Checkpoint | WlOp::BatchCommit) {
            synced.set(idx + 1);
        }
    }
    Ok(())
}

/// Result of one crash point.
#[derive(Debug, Serialize)]
pub struct PointOutcome {
    /// Fence ordinal the primary crash fired at.
    pub fence: u64,
    /// Maintenance stage attributed to the crash point.
    pub stage: String,
    /// Fence ordinal of the nested recovery crash, if one fired.
    pub nested_fence: Option<u64>,
    /// Invariant violations found after recovery (empty = pass).
    pub violations: Vec<String>,
}

/// Aggregated crash-matrix report (serialized by `repro crash`).
#[derive(Debug, Serialize)]
pub struct CrashMatrixReport {
    /// Compaction scheme of the store under test.
    pub scheme: String,
    /// Ops in the workload script.
    pub workload_ops: u64,
    /// Fences in a crash-free run = size of the full matrix.
    pub total_fences: u64,
    /// Points actually crashed and audited.
    pub points_tested: u64,
    /// Points where a nested crash fired during recovery.
    pub nested_crashes: u64,
    /// Tested points per attributed stage, descending.
    pub stages: Vec<StagePoints>,
    /// All failing points (empty = the matrix passed).
    pub violations: Vec<PointOutcome>,
}

/// Points attributed to one maintenance stage.
#[derive(Debug, Serialize)]
pub struct StagePoints {
    pub stage: String,
    pub points: u64,
}

impl CrashMatrixReport {
    /// Distinct crash points exercised, counting nested recovery crashes.
    pub fn distinct_points(&self) -> u64 {
        self.points_tested + self.nested_crashes
    }
}

/// Crash-free run of the full script; returns the total fence count
/// (the matrix size) and validates the workload itself end to end.
pub fn dry_run(cfg: &MatrixConfig, script: &[WlOp]) -> u64 {
    dry_run_with_metrics(cfg, script).0
}

/// [`dry_run`] plus the store's final metrics snapshot, so callers can
/// assert the workload actually crossed the stages they care about (the
/// GC matrix checks `gc_runs > 0` — an enumeration that never GCs would
/// silently test nothing new).
pub fn dry_run_with_metrics(
    cfg: &MatrixConfig,
    script: &[WlOp],
) -> (u64, chameleondb::StoreMetricsSnapshot) {
    let dev = PmemDevice::optane(cfg.device_bytes);
    let db = ChameleonDb::create(Arc::clone(&dev), store_config_for(cfg))
        .expect("crash matrix: create failed in dry run");
    let mut ctx = ThreadCtx::with_default_cost();
    let completed = Cell::new(0);
    let synced = Cell::new(0);
    exec(&db, &mut ctx, script, &completed, &synced)
        .expect("crash matrix: workload failed in dry run");
    (dev.fence_count(), db.metrics())
}

/// Runs one crash point: arm at fence `k`, crash, (maybe) crash again
/// inside recovery at `k2 = fence_count + nested_offset`, recover, audit.
pub fn run_point(
    cfg: &MatrixConfig,
    script: &[WlOp],
    model: &BTreeMap<u64, Vec<Version>>,
    k: u64,
    nested_offset: Option<u64>,
) -> PointOutcome {
    let dev = PmemDevice::optane(cfg.device_bytes);
    let store_cfg = store_config_for(cfg);
    dev.arm_crash_at_fence(k);

    let completed = Cell::new(0u64);
    let synced = Cell::new(0u64);
    let mut ctx = ThreadCtx::with_default_cost();
    // The store outlives the unwind so the open maintenance span is still
    // readable for stage attribution.
    let db_slot: RefCell<Option<ChameleonDb>> = RefCell::new(None);
    let res = catch_unwind(AssertUnwindSafe(|| -> kvapi::Result<()> {
        let db = ChameleonDb::create(Arc::clone(&dev), store_cfg.clone())?;
        *db_slot.borrow_mut() = Some(db);
        let slot = db_slot.borrow();
        exec(
            slot.as_ref().unwrap(),
            &mut ctx,
            script,
            &completed,
            &synced,
        )
    }));

    match res {
        Ok(Ok(())) => {
            // k was beyond the last fence; nothing to audit.
            return PointOutcome {
                fence: k,
                stage: "none".into(),
                nested_fence: None,
                violations: vec![format!(
                    "fence {k} never fired (workload ran to completion)"
                )],
            };
        }
        Ok(Err(e)) => {
            return PointOutcome {
                fence: k,
                stage: "none".into(),
                nested_fence: None,
                violations: vec![format!("workload errored before fence {k}: {e}")],
            };
        }
        Err(payload) => match payload.downcast::<CrashPoint>() {
            Ok(cp) => debug_assert_eq!(cp.fence, k),
            // Model divergence or a store bug pre-crash: surface loudly.
            Err(other) => resume_unwind(other),
        },
    }

    let stage: &'static str = match db_slot.borrow().as_ref() {
        None => "create",
        Some(db) => db
            .obs()
            .current_stage()
            .map(|s| s.name())
            .unwrap_or("foreground"),
    };
    *db_slot.borrow_mut() = None;

    // Power cut: every unfenced line is gone.
    dev.crash();

    if let Some(off) = nested_offset {
        dev.arm_crash_at_fence(dev.fence_count() + off);
    }
    let mut nested_fence = None;
    let db2 = loop {
        let r = catch_unwind(AssertUnwindSafe(|| {
            ChameleonDb::recover(Arc::clone(&dev), store_cfg.clone(), &mut ctx)
        }));
        match r {
            Ok(Ok(db)) => break db,
            Ok(Err(e)) => {
                return PointOutcome {
                    fence: k,
                    stage: stage.into(),
                    nested_fence,
                    violations: vec![format!("recovery failed: {e}")],
                }
            }
            Err(payload) => match payload.downcast::<CrashPoint>() {
                Ok(cp) => {
                    // Double crash: power fails during replay. The arm
                    // auto-disarmed, so the retry recovers cleanly.
                    nested_fence = Some(cp.fence);
                    dev.crash();
                }
                Err(other) => resume_unwind(other),
            },
        }
    };
    // The nested arm may not have fired if recovery used fewer fences.
    dev.disarm_crash();

    db2.obs().record_event(
        ctx.clock.now(),
        EventKind::CrashInjected { fence: k, stage },
    );
    if let Some(nf) = nested_fence {
        db2.obs().record_event(
            ctx.clock.now(),
            EventKind::CrashInjected {
                fence: nf,
                stage: "recovery",
            },
        );
    }

    let violations = audit(&db2, &mut ctx, model, synced.get(), completed.get());
    PointOutcome {
        fence: k,
        stage: stage.into(),
        nested_fence,
        violations,
    }
}

/// Audits a recovered store against the shadow model: a single log-prefix
/// cut `C` in `[synced, completed + 1]` must explain every key's state.
fn audit(
    db: &ChameleonDb,
    ctx: &mut ThreadCtx,
    model: &BTreeMap<u64, Vec<Version>>,
    synced: u64,
    completed: u64,
) -> Vec<String> {
    let mut violations = Vec::new();
    // Inclusive intervals of feasible cuts, intersected key by key.
    let mut feasible: Vec<(u64, u64)> = vec![(synced, completed + 1)];
    let mut out = Vec::new();
    let mut live_keys: Vec<u64> = Vec::new();
    for (&key, versions) in model {
        let found = match db.get(ctx, key, &mut out) {
            Ok(f) => f,
            Err(e) => {
                violations.push(format!("get({key}) failed after recovery: {e}"));
                continue;
            }
        };
        if found {
            live_keys.push(key);
        }
        let allowed: Vec<(u64, u64)> = if found {
            if out.len() != 16 || out[..8] != key.to_le_bytes() {
                violations.push(format!("key {key}: garbled value {out:?}"));
                continue;
            }
            let op = u64::from_le_bytes(out[8..16].try_into().unwrap());
            match versions.iter().find(|v| v.op == op && !v.del) {
                None => {
                    violations.push(format!("key {key}: value from op {op} was never written"));
                    continue;
                }
                Some(v) => {
                    // Observed iff v landed and nothing newer did:
                    // v.op < C <= next version's op.
                    let next = versions
                        .iter()
                        .find(|w| w.op > v.op)
                        .map(|w| w.op)
                        .unwrap_or(u64::MAX);
                    vec![(v.op + 1, next)]
                }
            }
        } else {
            // Absent iff the cut predates the key's first version, or the
            // newest landed version is a tombstone.
            let mut iv = Vec::new();
            if let Some(first) = versions.first() {
                iv.push((0, first.op));
            }
            for (i, v) in versions.iter().enumerate() {
                if v.del {
                    let next = versions.get(i + 1).map(|w| w.op).unwrap_or(u64::MAX);
                    iv.push((v.op + 1, next));
                }
            }
            iv
        };
        let narrowed = intersect(&feasible, &allowed);
        if narrowed.is_empty() {
            let state = if found {
                format!(
                    "value from op {}",
                    u64::from_le_bytes(out[8..16].try_into().unwrap())
                )
            } else {
                "absent".into()
            };
            violations.push(format!(
                "key {key}: {state} admits no log-prefix cut in [{synced}, {}] \
                 consistent with the other keys (acked write lost, stale \
                 resurrection, or torn ordering)",
                completed + 1
            ));
            // Keep the previous feasible set so later keys still get
            // audited against the acknowledged window.
        } else {
            feasible = narrowed;
        }
    }
    // Post-recovery scan audit: the ordered index is rebuilt wholesale
    // during recovery, so one full scan (served inside the degraded
    // window, before any ABI rebuild) must agree *exactly* with what the
    // hash-index gets above observed — same live key set, strictly
    // sorted. A mismatch is an index divergence the point-get audit
    // cannot see (resurrected tombstone, dropped rebuild entry).
    match db.scan(ctx, 0, model.len() + 16) {
        Ok(scanned) => {
            if !scanned.windows(2).all(|w| w[0] < w[1]) {
                violations.push("post-recovery scan not strictly ascending".into());
            }
            if scanned != live_keys {
                let extra: Vec<u64> = scanned
                    .iter()
                    .filter(|k| live_keys.binary_search(k).is_err())
                    .copied()
                    .collect();
                let missing: Vec<u64> = live_keys
                    .iter()
                    .filter(|k| scanned.binary_search(k).is_err())
                    .copied()
                    .collect();
                violations.push(format!(
                    "post-recovery scan diverged from gets: {} phantom key(s) {extra:?}, \
                     {} missing key(s) {missing:?}",
                    extra.len(),
                    missing.len()
                ));
            }
        }
        Err(e) => violations.push(format!("post-recovery scan failed: {e}")),
    }
    violations
}

/// Intersection of two inclusive-interval unions.
fn intersect(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for &(alo, ahi) in a {
        for &(blo, bhi) in b {
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
        }
    }
    out
}

/// Runs the whole matrix. `progress(done, total)` is called after each
/// tested point (pass `|_, _| {}` to ignore).
pub fn run_matrix(cfg: &MatrixConfig, mut progress: impl FnMut(u64, u64)) -> CrashMatrixReport {
    let script = build_script_churn(cfg.keys, cfg.churn);
    let model = build_model(&script);
    let total_fences = dry_run(cfg, &script);
    let stride = cfg.stride.max(1);
    let planned = total_fences.div_ceil(stride);

    let mut stage_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut violations = Vec::new();
    let mut points_tested = 0;
    let mut nested_crashes = 0;
    let mut idx = 0u64;
    let mut k = 1;
    while k <= total_fences {
        // Vary the nested offset so the replay is cut at different depths.
        let nested_offset = if cfg.nested_every > 0 && idx.is_multiple_of(cfg.nested_every) {
            Some(1 + (idx / cfg.nested_every) % 17)
        } else {
            None
        };
        let outcome = run_point(cfg, &script, &model, k, nested_offset);
        points_tested += 1;
        if outcome.nested_fence.is_some() {
            nested_crashes += 1;
        }
        *stage_counts.entry(outcome.stage.clone()).or_insert(0) += 1;
        if !outcome.violations.is_empty() {
            violations.push(outcome);
        }
        progress(points_tested, planned);
        idx += 1;
        k += stride;
    }

    let mut stages: Vec<StagePoints> = stage_counts
        .into_iter()
        .map(|(stage, points)| StagePoints { stage, points })
        .collect();
    stages.sort_by_key(|s| std::cmp::Reverse(s.points));
    let mut scheme = match cfg.scheme {
        CompactionScheme::Direct => "direct".to_string(),
        CompactionScheme::LevelByLevel => "level_by_level".to_string(),
    };
    if cfg.gc {
        scheme.push_str("_gc");
    }
    CrashMatrixReport {
        scheme,
        workload_ops: script.len() as u64,
        total_fences,
        points_tested,
        nested_crashes,
        stages,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_covers_all_op_kinds() {
        let s = build_script(128);
        assert!(s.iter().any(|o| matches!(o, WlOp::Put(_))));
        assert!(s.iter().any(|o| matches!(o, WlOp::Del(_))));
        assert!(s.iter().any(|o| matches!(o, WlOp::Get(_))));
        assert!(s.iter().any(|o| matches!(o, WlOp::Checkpoint)));
        assert!(s
            .iter()
            .any(|o| matches!(o, WlOp::SetMode(Mode::WriteIntensive))));
        assert!(s.iter().filter(|o| matches!(o, WlOp::Sync)).count() >= 3);
        assert!(s.iter().any(|o| matches!(o, WlOp::BatchPut(_))));
        assert!(s.iter().any(|o| matches!(o, WlOp::BatchDel(_))));
        assert_eq!(
            s.iter().filter(|o| matches!(o, WlOp::BatchCommit)).count(),
            2
        );
    }

    /// Each batch must overflow the matrix log config's 512B
    /// `batch_bytes`, so the matrix really enumerates mid-batch
    /// auto-fence crash points (a partially persisted batch).
    #[test]
    fn batches_are_large_enough_to_split_across_fences() {
        let s = build_script(128);
        let mut staged_bytes = 0usize;
        let mut min_batch = usize::MAX;
        for op in &s {
            match op {
                // 16B value + per-entry log header.
                WlOp::BatchPut(_) => staged_bytes += 16 + kvlog::ENTRY_HEADER,
                WlOp::BatchDel(_) => staged_bytes += kvlog::ENTRY_HEADER,
                WlOp::BatchCommit => {
                    min_batch = min_batch.min(staged_bytes);
                    staged_bytes = 0;
                }
                _ => {}
            }
        }
        assert!(
            min_batch >= 2 * 512,
            "smallest batch ({min_batch}B) must span several 512B log fences"
        );
    }

    #[test]
    fn model_versions_are_ordered() {
        let s = build_script(128);
        let m = build_model(&s);
        for versions in m.values() {
            assert!(versions.windows(2).all(|w| w[0].op < w[1].op));
        }
    }

    #[test]
    fn interval_intersection() {
        assert_eq!(intersect(&[(0, 10)], &[(5, 20)]), vec![(5, 10)]);
        assert!(intersect(&[(0, 4)], &[(5, 20)]).is_empty());
        assert_eq!(
            intersect(&[(0, 10)], &[(2, 3), (8, 12)]),
            vec![(2, 3), (8, 10)]
        );
    }

    #[test]
    fn dry_run_reports_a_nontrivial_matrix() {
        let cfg = MatrixConfig::quick(CompactionScheme::Direct);
        let script = build_script(cfg.keys);
        let fences = dry_run(&cfg, &script);
        assert!(fences >= 100, "matrix unexpectedly small: {fences} fences");
    }
}
