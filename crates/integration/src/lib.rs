//! Integration-test host crate.
//!
//! Unit/integration tests live in `tests/`. The library part hosts the
//! [`crashmat`] crash-matrix fault-injection harness, shared between the
//! integration tests and the `repro crash` bench command.

pub mod crashmat;
