//! Integration-test host crate; tests live in tests/.
