//! Observability integration: the event journal must record the full
//! Normal → Write-Intensive → Get-Protect mode arc with correct trigger
//! reasons and non-decreasing simulated timestamps, spans must attribute
//! maintenance traffic, and both exporters must render a live store.

use std::sync::Arc;

use chameleon_obs::{EventKind, ObsConfig};
use chameleondb::{ChameleonConfig, ChameleonDb, GpmConfig, Mode};
use kvapi::KvStore;
use kvlog::LogConfig;
use pmem_sim::{PmemDevice, ThreadCtx};

fn obs_config() -> ChameleonConfig {
    ChameleonConfig {
        log: LogConfig {
            capacity: 256 << 20,
            ..LogConfig::default()
        },
        gpm: GpmConfig {
            enabled: true,
            enter_threshold_ns: 1,
            exit_threshold_ns: 0,
            window_ops: 16,
        },
        obs: ObsConfig::with_capacity(4096),
        ..ChameleonConfig::tiny()
    }
}

fn build() -> (Arc<PmemDevice>, ChameleonDb) {
    let dev = PmemDevice::optane(1 << 30);
    let store = ChameleonDb::create(Arc::clone(&dev), obs_config()).expect("create");
    (dev, store)
}

#[test]
fn journal_records_mode_arc_with_triggers_and_monotonic_timestamps() {
    let (_dev, store) = build();
    let mut ctx = ThreadCtx::with_default_cost();

    // Normal → WriteIntensive via the API.
    store.set_mode(Mode::WriteIntensive);
    // Back to Normal so the latency monitor owns the next transition.
    store.set_mode(Mode::Normal);
    // Some traffic, then a full hair-trigger window of gets enters GPM.
    for k in 0..2_000u64 {
        store.put(&mut ctx, k, b"v").expect("put");
    }
    let mut out = Vec::new();
    for k in 0..32u64 {
        store.get(&mut ctx, k, &mut out).expect("get");
    }
    assert_eq!(store.mode(), Mode::GetProtect, "hair trigger must fire");

    let events = store.obs().journal().events();
    assert!(!events.is_empty());

    // Timestamps are non-decreasing journal-wide (the ring clamps).
    let mut last_ts = 0;
    for ev in &events {
        assert!(
            ev.ts >= last_ts,
            "event seq {} ts {} went backwards from {}",
            ev.seq,
            ev.ts,
            last_ts
        );
        last_ts = ev.ts;
    }

    // The three transitions, in order, with the right triggers.
    let arcs: Vec<(&str, &str, &str)> = events
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::ModeTransition {
                from, to, trigger, ..
            } => Some((from, to, trigger)),
            _ => None,
        })
        .collect();
    assert_eq!(
        arcs,
        vec![
            ("normal", "write_intensive", "set_mode"),
            ("write_intensive", "normal", "set_mode"),
            ("normal", "get_protect", "p99_above_enter_threshold"),
        ]
    );

    // The GPM entry carries the windowed p99 that drove it.
    let gpm_entry = events
        .iter()
        .find_map(|ev| match ev.kind {
            EventKind::ModeTransition {
                to: "get_protect",
                p99_ns,
                ..
            } => Some(p99_ns),
            _ => None,
        })
        .expect("GPM entry event");
    assert!(gpm_entry > 1, "p99 {gpm_entry} must exceed the 1ns trigger");
    assert_eq!(store.metrics().gpm_entries, 1);
}

#[test]
fn gpm_exit_transition_is_journaled_with_exit_trigger() {
    let (_dev, store) = build();
    let mut cfg = obs_config();
    // A GPM that can actually exit: p99 below 10us leaves.
    cfg.gpm.exit_threshold_ns = 10_000;
    cfg.gpm.enter_threshold_ns = 1;
    let dev = PmemDevice::optane(1 << 30);
    let store2 = ChameleonDb::create(Arc::clone(&dev), cfg).expect("create");
    drop(store);
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..512u64 {
        store2.put(&mut ctx, k, b"v").expect("put");
    }
    let mut out = Vec::new();
    // Enter on the first window, exit on a later one (every real window
    // p99 is far below 10us once in DRAM-served steady state).
    for k in 0..64u64 {
        store2.get(&mut ctx, k % 512, &mut out).expect("get");
    }
    let triggers: Vec<&str> = store2
        .obs()
        .journal()
        .events()
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::ModeTransition { trigger, .. } => Some(trigger),
            _ => None,
        })
        .collect();
    assert!(
        triggers.contains(&"p99_above_enter_threshold"),
        "{triggers:?}"
    );
    assert!(
        triggers.contains(&"p99_below_exit_threshold"),
        "{triggers:?}"
    );
}

#[test]
fn snapshot_attributes_maintenance_and_rolls_up_latencies() {
    let (dev, store) = build();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..30_000u64 {
        store.put(&mut ctx, k, b"value").expect("put");
    }
    store.sync(&mut ctx).expect("sync");
    let mut out = Vec::new();
    for k in 0..100u64 {
        assert!(store.get(&mut ctx, k, &mut out).expect("get"));
    }

    let snap = store.obs_snapshot(ctx.clock.now());
    assert!(snap.enabled);
    assert!(
        snap.events_total >= 32,
        "expected a busy journal, got {}",
        snap.events_total
    );

    // Flushes must have happened and claimed media traffic; every stage
    // share plus the foreground remainder partitions device writes.
    let flush = snap.stage("flush").expect("flush stage");
    assert!(flush.count > 0);
    assert!(flush.media_bytes_written > 0);
    let share_sum: f64 = snap.stages.iter().map(|s| s.media_write_share).sum();
    assert!((share_sum - 1.0).abs() < 1e-6, "shares sum to {share_sum}");

    // Op latencies rolled up across shards.
    let put = snap.op("put").expect("put row");
    assert_eq!(put.count, 30_000);
    assert!(put.p50_ns > 0 && put.p99_ns >= put.p50_ns && put.p999_ns >= put.p99_ns);
    let get = snap.op("get").expect("get row");
    assert_eq!(get.count, 100);

    // Counter sections carry the store metrics.
    let store_section = snap
        .counters
        .iter()
        .find(|s| s.name == "store")
        .expect("store section");
    let flushes = store_section
        .counters
        .iter()
        .find(|(n, _)| *n == "flushes")
        .expect("flushes counter")
        .1;
    assert_eq!(flushes, store.metrics().flushes);
    assert_eq!(flushes, flush.count);

    // Media snapshot matches the device.
    assert_eq!(snap.media, dev.stats().snapshot());
}

#[test]
fn exporters_render_a_live_store() {
    let (_dev, store) = build();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..10_000u64 {
        store.put(&mut ctx, k, b"v").expect("put");
    }
    let snap = store.obs_snapshot(ctx.clock.now());

    let json = snap.to_pretty_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"captured_ts\""));
    assert!(json.contains("\"stages\""));
    assert!(json.contains("\"memtable_flush\"") || json.contains("\"mid_compaction\""));

    let prom = snap.to_prometheus();
    let mut samples = 0;
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("name value");
        assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        let metric = name_part.split('{').next().unwrap();
        assert!(
            metric.starts_with("chameleon_")
                && metric
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "bad metric name in {line}"
        );
        samples += 1;
    }
    assert!(samples > 32, "expected a full exposition, got {samples}");
}

#[test]
fn disabled_observability_still_snapshots_counters() {
    let dev = PmemDevice::optane(512 << 20);
    let mut cfg = obs_config();
    cfg.obs = ObsConfig::off();
    cfg.gpm = GpmConfig::default();
    let store = ChameleonDb::create(Arc::clone(&dev), cfg).expect("create");
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..5_000u64 {
        store.put(&mut ctx, k, b"v").expect("put");
    }
    let snap = store.obs_snapshot(ctx.clock.now());
    assert!(!snap.enabled);
    assert_eq!(snap.events_total, 0);
    assert_eq!(snap.op("put").unwrap().count, 0, "no hot-path recording");
    // Counter sections and media stats still tell the story.
    let store_section = snap.counters.iter().find(|s| s.name == "store").unwrap();
    assert!(store_section
        .counters
        .iter()
        .any(|&(n, v)| n == "puts" && v == 5_000));
    assert!(snap.media.media_bytes_written > 0);
    // And both exporters still render.
    assert!(snap.to_pretty_json().contains("\"enabled\": false"));
    assert!(snap.to_prometheus().contains("chameleon_store_puts 5000"));
}

#[test]
fn crash_event_is_journaled_on_recovery() {
    use kvapi::CrashRecover;
    let (_dev, mut store) = build();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..2_000u64 {
        store.put(&mut ctx, k, b"v").expect("put");
    }
    store.sync(&mut ctx).expect("sync");
    store.crash_and_recover(&mut ctx).expect("recover");
    let crashes: Vec<u64> = store
        .obs()
        .journal()
        .events()
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Crash { crashes } => Some(crashes),
            _ => None,
        })
        .collect();
    assert_eq!(crashes, vec![1], "one crash event after one crash");
}
