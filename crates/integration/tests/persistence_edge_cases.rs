//! Edge cases in the persistence stack: extent boundaries, manifest churn,
//! allocator reuse across recovery, and value-size extremes.

use std::sync::Arc;

use chameleondb::{ChameleonConfig, ChameleonDb, Manifest, ManifestRecord, Superblock};
use kvapi::KvStore;
use kvlog::{LogConfig, StorageLog, ENTRY_HEADER, EXTENT};
use pmem_sim::{PRegion, PmemDevice, ThreadCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Entries sized to land exactly on and around extent boundaries must
/// never straddle one, and all survive a crash.
#[test]
fn log_extent_boundary_entries() {
    let dev = PmemDevice::optane(256 << 20);
    let log = StorageLog::create(
        Arc::clone(&dev),
        LogConfig {
            capacity: 64 << 20,
            ..LogConfig::default()
        },
    )
    .unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut w = log.writer();
    // Value sized so ~3.9 entries fit per extent: every 4th append crosses.
    let vlen = (EXTENT / 4) as usize - ENTRY_HEADER - 7;
    let value = vec![0x5Au8; vlen];
    let mut metas = Vec::new();
    for k in 0..20u64 {
        metas.push(w.append(&mut ctx, k, &value, false).unwrap());
    }
    w.flush(&mut ctx).unwrap();
    for m in &metas {
        let rel = m.off - log.region().off;
        let end = rel + (ENTRY_HEADER + vlen) as u64;
        assert_eq!(
            rel / EXTENT,
            (end - 1) / EXTENT,
            "entry straddles an extent"
        );
    }
    dev.crash();
    let mut seen = 0;
    log.scan(&mut ctx, |_| seen += 1).unwrap();
    assert_eq!(seen, 20);
}

/// Maximum-size and empty values round-trip through a full store.
#[test]
fn value_size_extremes_through_store() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 256 << 20,
        max_value: 200 << 10,
        ..LogConfig::default()
    };
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let big = vec![0xEEu8; 200 << 10];
    db.put(&mut ctx, 1, &big).unwrap();
    db.put(&mut ctx, 2, b"").unwrap();
    // Over-limit is rejected cleanly.
    assert!(db.put(&mut ctx, 3, &vec![0u8; (200 << 10) + 1]).is_err());
    db.sync(&mut ctx).unwrap();
    drop(db);
    dev.crash();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    assert!(db.get(&mut ctx, 1, &mut out).unwrap());
    assert_eq!(out, big);
    assert!(db.get(&mut ctx, 2, &mut out).unwrap());
    assert!(out.is_empty());
    assert!(!db.get(&mut ctx, 3, &mut out).unwrap());
}

/// Randomized manifest churn with periodic crashes: the replayed live set
/// must always equal the model.
#[test]
fn manifest_random_churn_replays_exactly() {
    let dev = PmemDevice::optane(64 << 20);
    let sb_off = dev.alloc(256).unwrap();
    let regions = [
        dev.alloc_region(16 << 10).unwrap(), // 512 records per region
        dev.alloc_region(16 << 10).unwrap(),
    ];
    let mut ctx = ThreadCtx::with_default_cost();
    let sb = Superblock {
        epoch: 0,
        active: 0,
        log_region: PRegion { off: 0, len: 0 },
        manifest: regions,
        blob: [0u8; 128],
    };
    sb.write(&dev, &mut ctx, sb_off);
    let mut manifest = Manifest::create(Arc::clone(&dev), sb_off, regions);
    let mut model: std::collections::BTreeMap<u64, ManifestRecord> = Default::default();
    let mut rng = StdRng::seed_from_u64(99);
    let mut next_off = 1u64;
    for round in 0..400 {
        if rng.gen_bool(0.7) || model.is_empty() {
            let rec = ManifestRecord::Add {
                shard: rng.gen_range(0..8),
                level: rng.gen_range(0..4),
                table_seq: round,
                region: PRegion {
                    off: next_off * 4096,
                    len: 4096,
                },
            };
            model.insert(next_off * 4096, rec);
            next_off += 1;
            let live: Vec<ManifestRecord> = model.values().copied().collect();
            manifest.append(&mut ctx, &[rec], move || live).unwrap();
        } else {
            let off = *model.keys().nth(rng.gen_range(0..model.len())).unwrap();
            model.remove(&off);
            let live: Vec<ManifestRecord> = model.values().copied().collect();
            manifest
                .append(&mut ctx, &[ManifestRecord::Del { off }], move || live)
                .unwrap();
        }
        if round % 67 == 0 {
            dev.crash();
            let sb = Superblock::read(&dev, &mut ctx, sb_off).unwrap();
            let (m2, live) = Manifest::open(Arc::clone(&dev), &mut ctx, sb_off, &sb).unwrap();
            let mut got: Vec<u64> = live
                .iter()
                .map(|r| match r {
                    ManifestRecord::Add { region, .. } => region.off,
                    _ => panic!("live set contains delete"),
                })
                .collect();
            got.sort_unstable();
            let want: Vec<u64> = model.keys().copied().collect();
            assert_eq!(got, want, "round {round}: live set diverged");
            manifest = m2;
        }
    }
}

/// Pmem space is reclaimed: steady-state overwrites must not grow the
/// device allocation unboundedly (tables are freed after compactions).
#[test]
fn compactions_recycle_pmem_space() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 512 << 20,
        ..LogConfig::default()
    };
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    // Overwrite the same keys repeatedly: the index size is bounded, so
    // allocated table space must stabilise even as the log grows linearly.
    for k in 0..30_000u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    let after_first = dev.allocated_bytes();
    for _ in 0..4 {
        for k in 0..30_000u64 {
            db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
        }
    }
    let after_fifth = dev.allocated_bytes();
    // The log grows by ~4x30k x 32B = ~3.8MB; table space must not balloon
    // beyond that plus transient slack.
    let growth = after_fifth - after_first;
    assert!(
        growth < 16 << 20,
        "allocation grew {growth} bytes across steady-state overwrites"
    );
}

/// A recovered store's allocator must not hand out regions overlapping
/// recovered tables (regression guard for `reset_allocator`).
#[test]
fn recovered_allocator_does_not_clobber_tables() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 128 << 20,
        ..LogConfig::default()
    };
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..20_000u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    db.sync(&mut ctx).unwrap();
    drop(db);
    dev.crash();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    // Heavy post-recovery writing allocates many new tables; if the
    // allocator overlapped old ones, reads below would return garbage.
    for k in 20_000..60_000u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    let mut out = Vec::new();
    for k in (0..60_000u64).step_by(331) {
        assert!(db.get(&mut ctx, k, &mut out).unwrap(), "key {k} clobbered");
        assert_eq!(out, k.to_le_bytes());
    }
}
