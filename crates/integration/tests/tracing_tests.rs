//! End-to-end tests of PR-6 observability: forced and sampled request
//! tracing over the wire, windowed telemetry, the plain-HTTP metrics
//! sidecar, and write-stall journal events.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use chameleon_obs::trace::decode_trace_payload;
use chameleon_obs::{EventKind, ObsConfig, ServerObs, TraceConfig};
use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::KvStore;
use kvclient::Client;
use kvserver::{KvServer, ServerConfig};
use pmem_sim::{CostModel, PmemDevice, ThreadCtx};

fn test_store_config() -> ChameleonConfig {
    ChameleonConfig {
        memtable_slots: 4096,
        obs: ObsConfig::on(),
        ..ChameleonConfig::tiny()
    }
}

fn start_server(
    dev: &Arc<PmemDevice>,
    store: &Arc<ChameleonDb>,
    cfg: ServerConfig,
) -> (KvServer, std::net::SocketAddr) {
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(dev),
        Arc::clone(store),
        Arc::new(ServerObs::new()),
        cfg,
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

/// Minimal HTTP GET for the sidecar tests (`Connection: close`, body
/// read to EOF). Returns `(status, headers, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header break");
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

/// Acceptance: a client-forced durable PUT yields a span whose named
/// pipeline stages account for >= 90% of the server-side span total —
/// with rate sampling entirely off (the wire flag alone forces it).
#[test]
fn forced_put_span_stages_account_for_span_total() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            trace: TraceConfig::off(),
            ..ServerConfig::default()
        },
    );

    let mut c = Client::connect(addr).unwrap();
    for key in 0..8u64 {
        c.put_traced(key, b"traced-put", true).unwrap();
    }
    c.sync().unwrap();

    let payload = decode_trace_payload(&c.trace(64).unwrap()).expect("decode payload");
    let puts: Vec<_> = payload.spans.iter().filter(|s| s.op == "put").collect();
    assert!(!puts.is_empty(), "forced puts must record spans");

    let pipeline = [
        "decode",
        "lane_enqueue",
        "batch_seal",
        "engine_append",
        "engine_fence",
        "fence_complete",
        "ack_write",
    ];
    let mut full = 0usize;
    for s in &puts {
        assert!(s.forced, "span {} must be marked forced", s.id);
        assert_eq!(
            s.stage_sum_ns(),
            s.total_ns,
            "stage durations must sum exactly to the span total"
        );
        let named: u64 = pipeline.iter().filter_map(|st| s.stage_ns(st)).sum();
        assert!(
            named as f64 >= 0.9 * s.total_ns as f64,
            "span {}: named stages cover {} of {} ns (< 90%): {:?}",
            s.id,
            named,
            s.total_ns,
            s.stages
        );
        if pipeline.iter().all(|st| s.stage_ns(st).is_some()) {
            full += 1;
        }
    }
    assert!(
        full > 0,
        "at least one put must carry the full pipeline {pipeline:?}"
    );
    server.shutdown().unwrap();
}

/// Rate sampling (1/1) traces unforced requests, feeds the per-stage
/// histograms, and shows up in the STATS Prometheus rendering.
#[test]
fn sampled_traces_populate_stage_histograms_and_stats() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            trace: TraceConfig::sampled(1),
            ..ServerConfig::default()
        },
    );

    let mut c = Client::connect(addr).unwrap();
    for key in 0..32u64 {
        c.put(key, b"sampled", true).unwrap();
        assert!(c.get(key).unwrap().is_some());
    }

    let summaries = server.tracer().stage_summaries();
    for stage in ["decode", "ack_write", "engine_probe"] {
        let s = summaries
            .iter()
            .find(|t| t.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing from {summaries:?}"));
        assert!(s.count > 0);
    }

    let prom = c.stats(kvclient::StatsFormat::Prometheus).unwrap();
    for metric in [
        "chameleon_trace_stage_count{stage=\"batch_seal\"}",
        "chameleon_trace_stage_ns{stage=\"fence_complete\",quantile=\"0.99\"}",
        "chameleon_trace_spans_completed",
    ] {
        assert!(prom.contains(metric), "prometheus text missing {metric}");
    }
    server.shutdown().unwrap();
}

/// The telemetry sampler fills the windowed series under load: windows
/// accumulate, sequence numbers advance, the ring cap holds, and the
/// windows record the ops that happened inside them.
#[test]
fn windowed_series_populates_under_load() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            telemetry_interval: Duration::from_millis(25),
            window_cap: 4,
            ..ServerConfig::default()
        },
    );

    let mut c = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_millis(400);
    let mut key = 0u64;
    while std::time::Instant::now() < deadline {
        c.put(key, b"windowed", true).unwrap();
        key += 1;
    }

    let windows = server.windows().windows();
    assert!(
        windows.len() >= 2,
        "400ms at a 25ms interval must tick multiple windows"
    );
    assert!(windows.len() <= 4, "ring must respect window_cap");
    for pair in windows.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "window seqs must be dense");
    }
    let puts: u64 = windows
        .iter()
        .flat_map(|w| w.ops.iter())
        .filter(|o| o.op == "put")
        .map(|o| o.count)
        .sum();
    assert!(puts > 0, "windows must record the puts issued inside them");
    server.shutdown().unwrap();
}

/// The plain-HTTP sidecar serves `/metrics` (Prometheus exposition with
/// the windowed and trace series) and `/snapshot.json`, and answers 404
/// on unknown paths.
#[test]
fn http_sidecar_serves_metrics_and_snapshot() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            trace: TraceConfig::sampled(1),
            telemetry_interval: Duration::from_millis(25),
            window_cap: 8,
            http_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    );
    let http = server.http_addr().expect("sidecar must be up");

    let mut c = Client::connect(addr).unwrap();
    for key in 0..64u64 {
        c.put(key, b"scraped", true).unwrap();
        assert!(c.get(key).unwrap().is_some());
    }
    // Let at least one telemetry window close over the traffic.
    thread::sleep(Duration::from_millis(80));

    let (status, head, body) = http_get(http, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain"), "wrong content type: {head}");
    for metric in [
        "chameleon_server_requests",
        "chameleon_win_ops_per_sec",
        "chameleon_trace_stage_count",
    ] {
        assert!(body.contains(metric), "/metrics missing {metric}");
    }

    let (status, head, body) = http_get(http, "/snapshot.json");
    assert_eq!(status, 200);
    assert!(head.contains("application/json"));
    for key in ["\"server\"", "\"windows\"", "\"trace_stages\""] {
        assert!(body.contains(key), "/snapshot.json missing {key}");
    }

    let (status, _, _) = http_get(http, "/bogus");
    assert_eq!(status, 404);

    server.shutdown().unwrap();
}

/// Satellite: a write-stall episode records paired journal events — one
/// `write_stall_enter` when the writer first blocks on the frozen queue,
/// one `write_stall_exit` carrying the episode's total blocked time.
#[test]
fn write_stall_episode_emits_journal_events() {
    // Torture config per reader_stress: tiny MemTables with one worker
    // and a frozen-queue cap of 1, so writers outrun maintenance and
    // must stall.
    let mut cfg = ChameleonConfig {
        obs: ObsConfig::on(),
        ..ChameleonConfig::tiny()
    };
    cfg.log = kvlog::LogConfig {
        capacity: 256 << 20,
        ..kvlog::LogConfig::default()
    };
    cfg.bg.workers = 1;
    cfg.bg.frozen_queue_cap = 1;

    let dev = PmemDevice::optane(1 << 30);
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    dev.set_active_threads(2);
    let cost = Arc::new(CostModel::default());

    thread::scope(|s| {
        for w in 0..2usize {
            let db = &db;
            let cost = Arc::clone(&cost);
            s.spawn(move || {
                let mut ctx = ThreadCtx::for_thread(cost, w);
                for i in 0..20_000u64 {
                    let k = ((w as u64) << 32) | i;
                    db.put(&mut ctx, k, format!("stall-{k:x}").as_bytes())
                        .expect("put");
                }
            });
        }
    });

    assert!(
        db.metrics().write_stalls > 0,
        "torture config must stall writers"
    );
    let events = db.obs().journal().tail(4096);
    let enters = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WriteStallEnter { .. }))
        .count();
    let exits: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::WriteStallExit { stalled_ns, .. } => Some(stalled_ns),
            _ => None,
        })
        .collect();
    assert!(enters > 0, "no write_stall_enter event journaled");
    assert!(!exits.is_empty(), "no write_stall_exit event journaled");
    assert!(
        exits.iter().all(|&ns| ns > 0),
        "stall exits must carry the episode's blocked time"
    );
}
