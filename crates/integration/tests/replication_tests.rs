//! End-to-end tests of primary→replica log shipping over real TCP
//! loopback (ISSUE 10): ship/apply/read on a replica, quorum-withheld
//! durable acks, replica-apply determinism, promotion after a primary
//! crash, staleness-bounded reads — plus the satellite bugfix pins:
//! paged scans across the `MAX_SCAN_KEYS` boundary, fail-fast
//! `put_retrying` against a server in staged shutdown, and the idle
//! sweep sparing connections with a withheld (un-acked) submission.

use std::io::ErrorKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use chameleon_obs::{ObsConfig, ServerObs};
use chameleondb::{BatchOp, ChameleonConfig, ChameleonDb};
use kvclient::{Client, ReplicaReader, RetryPolicy, StatsFormat, WriteOutcome, MAX_SCAN_KEYS};
use kvrepl::Replica;
use kvserver::{AckPolicy, KvServer, ServerConfig};
use pmem_sim::{PmemDevice, ThreadCtx};

fn test_store_config() -> ChameleonConfig {
    ChameleonConfig {
        memtable_slots: 16384,
        obs: ObsConfig::on(),
        ..ChameleonConfig::tiny()
    }
}

fn new_node() -> (Arc<PmemDevice>, Arc<ChameleonDb>) {
    let dev = PmemDevice::optane(256 << 20);
    let store =
        Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).expect("create store"));
    (dev, store)
}

fn start_primary(cfg: ServerConfig) -> (KvServer, std::net::SocketAddr, Arc<ChameleonDb>) {
    let (dev, store) = new_node();
    let server = KvServer::start(
        "127.0.0.1:0",
        dev,
        Arc::clone(&store),
        Arc::new(ServerObs::new()),
        cfg,
    )
    .expect("bind primary");
    let addr = server.local_addr();
    (server, addr, store)
}

fn start_replica(primary: std::net::SocketAddr) -> Replica {
    let (dev, store) = new_node();
    Replica::start(primary, "127.0.0.1:0", dev, store, ServerConfig::default())
        .expect("start replica")
}

fn value_for(key: u64) -> Vec<u8> {
    format!("repl-value-{key:016x}").into_bytes()
}

/// Reads one `chameleon_*` metric out of Prometheus text.
fn gauge(prom: &str, metric: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {metric} missing from STATS"))
}

/// Tentpole: writes shipped from a primary are applied by a replica and
/// served read-only — GET and SCAN agree with the primary, writes are
/// refused with a terminal error, and the lag floors are visible on
/// both ends of the wire and in the replica's Prometheus export.
#[test]
fn replica_ships_applies_and_serves_reads() {
    let (primary, addr, _store) = start_primary(ServerConfig::default());
    let replica = start_replica(addr);

    let mut w = Client::connect(addr).unwrap();
    for key in 0..200u64 {
        w.put_retrying(key, &value_for(key), true).unwrap();
    }
    w.delete(42).unwrap();

    let shipped = w.repl_floor().unwrap().shipped;
    assert!(shipped >= 1, "primary shipped nothing");
    assert!(
        replica.wait_applied(shipped, Duration::from_secs(10)),
        "replica never caught up to ship {shipped}"
    );

    let mut r = Client::connect(replica.addr()).unwrap();
    for key in 0..200u64 {
        let got = r.get(key).unwrap();
        if key == 42 {
            assert_eq!(got, None, "tombstone not applied on replica");
        } else {
            assert_eq!(got.as_deref(), Some(value_for(key).as_slice()));
        }
    }
    let keys = r.scan(0, 512).unwrap();
    assert_eq!(keys.len(), 199);
    assert!(!keys.contains(&42));

    // Writes are refused with a terminal (non-retryable) error.
    match r.put(7, b"nope", true) {
        Err(e) => assert_eq!(e.kind(), ErrorKind::Unsupported, "wrong kind: {e:?}"),
        Ok(out) => panic!("replica accepted a write: {out:?}"),
    }

    // Replica-side floors match what it applied; exported via STATS.
    let floors = r.repl_floor().unwrap();
    assert_eq!(floors.applied, replica.applied());
    assert!(floors.shipped >= floors.applied);
    let prom = r.stats(StatsFormat::Prometheus).unwrap();
    assert_eq!(gauge(&prom, "chameleon_repl_applied"), floors.applied);
    assert_eq!(gauge(&prom, "chameleon_repl_lag"), 0);

    // Primary-side: shipped floor exported through its hub section.
    let prom = w.stats(StatsFormat::Prometheus).unwrap();
    assert!(gauge(&prom, "chameleon_repl_shipped") >= shipped);

    replica.stop().unwrap();
    primary.shutdown().unwrap();
}

/// Tentpole: under `replica-quorum` the durable ack is *withheld* until
/// a replica confirms the fence — a client sees no ack while no replica
/// is subscribed, then the ack arrives as soon as one catches up. The
/// withheld submission also keeps the connection exempt from the idle
/// sweep (ISSUE 10 satellite 2: an un-acked lane submission is an
/// obligation, not idleness).
#[test]
fn quorum_ack_withheld_until_replica_confirms_and_conn_not_reaped() {
    let (primary, addr, _store) = start_primary(ServerConfig {
        ack_policy: AckPolicy::ReplicaQuorum { quorum: 1 },
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });

    let mut c = Client::connect(addr).unwrap();
    let id = c.send_put(9000, b"quorum-gated", true).unwrap();
    c.flush().unwrap();

    // No replica subscribed: the ack must be withheld.
    c.set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    match c.recv_for(id) {
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "expected read timeout while ack withheld, got {e:?}"
        ),
        Ok(resp) => panic!("ack released without a replica: {resp:?}"),
    }

    // Stay read-silent well past the idle timeout: the sweep must spare
    // this connection (inflight submission), and the sweep runs at
    // idle/4, so several sweep periods elapse here.
    thread::sleep(Duration::from_millis(500));

    // A replica subscribing (and backfilling from retention) releases it.
    let replica = start_replica(addr);
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    match c.recv_for(id) {
        Ok(kvclient::Response::Ok { .. }) => {}
        other => panic!("expected withheld ack to release, got {other:?}"),
    }

    // The write it acked is on the replica by construction of the ack.
    let mut r = Client::connect(replica.addr()).unwrap();
    assert_eq!(r.get(9000).unwrap().as_deref(), Some(&b"quorum-gated"[..]));

    let mut probe = Client::connect(addr).unwrap();
    let prom = probe.stats(StatsFormat::Prometheus).unwrap();
    assert_eq!(
        gauge(&prom, "chameleon_server_idle_disconnects"),
        0,
        "idle sweep reaped a connection with a withheld ack"
    );

    replica.stop().unwrap();
    primary.shutdown().unwrap();
}

/// Satellite 4: the same shipped batch stream produces the same image on
/// two independent replicas — identical logical value-log streams
/// (sequence, key, tombstone, bytes) and identical scans.
#[test]
fn same_stream_yields_identical_replica_images() {
    let (primary, addr, _store) = start_primary(ServerConfig::default());
    let ra = start_replica(addr);
    let rb = start_replica(addr);

    let mut w = Client::connect(addr).unwrap();
    for key in 0..300u64 {
        w.put_retrying(key, &value_for(key), true).unwrap();
        if key % 5 == 0 {
            w.put_retrying(key, &value_for(key ^ 0xFF), true).unwrap();
        }
        if key % 7 == 0 {
            w.delete(key).unwrap();
        }
    }

    let shipped = w.repl_floor().unwrap().shipped;
    for (name, r) in [("a", &ra), ("b", &rb)] {
        assert!(
            r.wait_applied(shipped, Duration::from_secs(10)),
            "replica {name} never caught up"
        );
    }

    let logical_tail = |store: &ChameleonDb| -> Vec<(u64, u64, bool, Vec<u8>)> {
        let mut ctx = ThreadCtx::with_default_cost();
        store
            .log()
            .tail_committed(&mut ctx, 0)
            .expect("tail replica log")
            .into_iter()
            .map(|(m, v)| (m.seq, m.key, m.tombstone, v))
            .collect()
    };
    let ta = logical_tail(ra.store());
    let tb = logical_tail(rb.store());
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "replica value-log streams diverged");

    let mut ctx = ThreadCtx::with_default_cost();
    let sa = ra.store().scan(&mut ctx, 0, 1024).unwrap();
    let sb = rb.store().scan(&mut ctx, 0, 1024).unwrap();
    assert_eq!(sa, sb, "replica scans diverged");

    ra.stop().unwrap();
    rb.stop().unwrap();
    primary.shutdown().unwrap();
}

/// Tentpole: kill the primary mid-stream (hard abort, no drain), promote
/// the replica, and audit the promoted image against the writer's acked
/// prefix — the log-prefix-cut invariant, distributed. Every acked write
/// is present, at most the one in-flight write is optional, nothing past
/// it exists, and the promoted server takes new writes.
#[test]
fn promotion_preserves_acked_prefix_after_primary_crash() {
    let (primary, addr, _store) = start_primary(ServerConfig {
        ack_policy: AckPolicy::ReplicaQuorum { quorum: 1 },
        ..ServerConfig::default()
    });
    let replica = start_replica(addr);

    const BASE: u64 = 1 << 40;
    let acked = Arc::new(AtomicU64::new(0));
    let writer = {
        let acked = Arc::clone(&acked);
        thread::spawn(move || {
            let mut c = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            for i in 0..100_000u64 {
                match c.put_retrying(BASE | i, &value_for(i), true) {
                    // Only count after the quorum ack: the acked floor is
                    // exactly the prefix the promoted image must contain.
                    Ok(_) => acked.store(i + 1, Ordering::Release),
                    Err(_) => break, // primary died
                }
            }
        })
    };

    // Let some writes through, then crash the primary at whatever fence
    // point it happens to be at — no drain, no final checkpoint.
    while acked.load(Ordering::Acquire) < 20 {
        thread::sleep(Duration::from_millis(1));
    }
    primary.abort();
    writer.join().unwrap();
    let f = acked.load(Ordering::Acquire);

    let promoted = replica.promote("127.0.0.1:0").expect("promote replica");
    let mut c = Client::connect(promoted.server.local_addr()).unwrap();
    for i in 0..f + 16 {
        let got = c.get(BASE | i).unwrap();
        if i < f {
            assert_eq!(
                got.as_deref(),
                Some(value_for(i).as_slice()),
                "acked write {i} (floor {f}) missing after promotion"
            );
        } else if i > f {
            assert_eq!(got, None, "unacked write {i} (floor {f}) materialized");
        }
        // i == f: the one in-flight write may have landed or not.
    }

    // The promoted image takes new writes.
    assert_eq!(
        c.put(BASE | (f + 100), b"post-promotion", true).unwrap(),
        WriteOutcome::Done { existed: true }
    );
    assert_eq!(
        c.get(BASE | (f + 100)).unwrap().as_deref(),
        Some(&b"post-promotion"[..])
    );

    promoted.server.shutdown().unwrap();
}

/// Tentpole: staleness-bounded reads through [`ReplicaReader`]. With
/// bound 0, a read issued after a quorum ack always observes that write;
/// with a dead primary connection the bound check fails fast instead of
/// serving unbounded staleness.
#[test]
fn staleness_bounded_reads_observe_acked_writes() {
    let (primary, addr, _store) = start_primary(ServerConfig {
        ack_policy: AckPolicy::ReplicaQuorum { quorum: 1 },
        ..ServerConfig::default()
    });
    let replica = start_replica(addr);

    let mut w = Client::connect(addr).unwrap();
    let mut reader = ReplicaReader::connect(addr, replica.addr()).unwrap();
    for key in 500..600u64 {
        w.put_retrying(key, &value_for(key), true).unwrap();
        // The ack implies shipped + quorum-applied, so a bound-0 read
        // after it must see the write.
        let got = reader
            .get_within(key, 0, Duration::from_secs(5))
            .expect("bound-0 read");
        assert_eq!(got.as_deref(), Some(value_for(key).as_slice()));
    }
    assert_eq!(reader.lag().unwrap(), 0);

    replica.stop().unwrap();
    primary.shutdown().unwrap();
}

/// Satellite 1: paged scans across the `MAX_SCAN_KEYS` boundary match an
/// embedded full scan — no duplicate at a page cut that lands exactly on
/// the limit, no skip, including when the boundary key is deleted
/// between pages.
#[test]
fn scan_paged_matches_embedded_full_scan() {
    let (dev, store) = new_node();
    // > MAX_SCAN_KEYS live keys with gaps, loaded directly.
    let mut ctx = ThreadCtx::with_default_cost();
    let total = MAX_SCAN_KEYS as u64 + 1900;
    for chunk in (0..total).collect::<Vec<_>>().chunks(512) {
        let ops: Vec<BatchOp> = chunk
            .iter()
            .map(|i| BatchOp::Put {
                key: 10 + i * 3,
                value: value_for(*i),
            })
            .collect();
        store.apply_batch(&mut ctx, &ops).unwrap();
    }
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&dev),
        Arc::clone(&store),
        Arc::new(ServerObs::new()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();

    let embedded = store.scan(&mut ctx, 0, total as usize + 64).unwrap();
    assert_eq!(embedded.len() as u64, total, "embedded scan sanity");

    // Paged wire scan over the whole range: two full pages + a partial.
    let paged = c.scan_paged(0, total as usize + 64).unwrap();
    assert_eq!(paged, embedded, "paged scan diverged from embedded scan");

    // A limit that lands exactly on a page boundary must return exactly
    // that many keys — the resume key (`last + 1`) neither duplicates
    // the boundary key nor skips its successor.
    let exact = c.scan_paged(0, MAX_SCAN_KEYS).unwrap();
    assert_eq!(exact, embedded[..MAX_SCAN_KEYS]);
    let two_pages = c.scan_paged(0, MAX_SCAN_KEYS + 1).unwrap();
    assert_eq!(two_pages, embedded[..MAX_SCAN_KEYS + 1]);

    // Boundary key deleted between pages: page one ends at `last`; after
    // deleting `last`, resuming from `last + 1` still returns exactly
    // the keys after it — the deleted key is not re-found (it was
    // already returned) and no survivor is skipped.
    let page1 = c.scan(0, MAX_SCAN_KEYS as u32).unwrap();
    let last = *page1.last().unwrap();
    assert_eq!(page1, embedded[..MAX_SCAN_KEYS]);
    c.delete(last).unwrap();
    let page2 = c.scan_paged(last + 1, total as usize).unwrap();
    assert_eq!(page2, embedded[MAX_SCAN_KEYS..]);

    server.shutdown().unwrap();
}

/// Satellite 3: `put_retrying` against a server in staged shutdown fails
/// fast with a terminal error instead of burning the backoff schedule.
/// The policy below would sleep ~2.7s if every attempt were retried;
/// the failing call must return far sooner and never as `TimedOut` (the
/// schedule-exhausted kind).
#[test]
fn put_retrying_fails_fast_on_staged_shutdown() {
    let (primary, addr, _store) = start_primary(ServerConfig::default());
    let mut c = Client::connect(addr).unwrap();
    c.put(1, b"warm", true).unwrap();

    let stopper = thread::spawn(move || {
        thread::sleep(Duration::from_millis(10));
        primary.shutdown().unwrap();
    });

    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(300),
        max_delay: Duration::from_millis(300),
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut key = 100u64;
    loop {
        assert!(Instant::now() < deadline, "server never refused a write");
        let t0 = Instant::now();
        match c.put_retrying_with(key, b"racing-shutdown", true, &policy) {
            Ok(_) => key += 1, // still accepting; keep writing into the stop
            Err(e) => {
                let took = t0.elapsed();
                assert_ne!(
                    e.kind(),
                    ErrorKind::TimedOut,
                    "burned the whole backoff schedule against a dead server: {e:?}"
                );
                assert!(
                    took < Duration::from_secs(2),
                    "terminal error took {took:?} — backoff burned before failing"
                );
                break;
            }
        }
    }
    stopper.join().unwrap();
}
