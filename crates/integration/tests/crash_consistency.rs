//! Crash-consistency: stores must never lose synced data, regardless of
//! when the power fails, and must never resurrect deleted keys.

use std::collections::HashMap;
use std::sync::Arc;

use baselines::{
    CcehConfig, DramHash, DramHashConfig, LsmVariant, PmemHash, PmemLsm, PmemLsmConfig,
};
use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::{CrashRecover, KvStore};
use kvlog::LogConfig;
use pmem_sim::{PmemDevice, ThreadCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY_SPACE: u64 = 3_000;

fn small_log() -> LogConfig {
    LogConfig {
        capacity: 128 << 20,
        ..LogConfig::default()
    }
}

/// Repeated rounds of mutate -> sync -> crash -> recover -> audit.
fn crash_loop<S, F>(mut store: S, seed: u64, rounds: usize, _reopen: F)
where
    S: KvStore + CrashRecover,
    F: Fn(),
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for round in 0..rounds {
        for _ in 0..4000 {
            let key = rng.gen_range(0..KEY_SPACE);
            if rng.gen_bool(0.85) {
                let v = rng.gen::<u128>().to_le_bytes().to_vec();
                store.put(&mut ctx, key, &v).expect("put");
                model.insert(key, v);
            } else {
                store.delete(&mut ctx, key).expect("delete");
                model.remove(&key);
            }
        }
        store.sync(&mut ctx).expect("sync");
        store.crash_and_recover(&mut ctx).expect("recover");
        for (k, v) in &model {
            assert!(
                store.get(&mut ctx, *k, &mut out).expect("get"),
                "round {round}: key {k} lost"
            );
            assert_eq!(&out, v, "round {round}: key {k} stale value");
        }
        for k in 0..KEY_SPACE {
            if !model.contains_key(&k) {
                assert!(
                    !store.get(&mut ctx, k, &mut out).expect("get"),
                    "round {round}: deleted key {k} resurrected"
                );
            }
        }
    }
}

#[test]
fn chameleondb_survives_repeated_crashes() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    crash_loop(db, 1, 4, || {});
}

#[test]
fn chameleondb_wim_survives_repeated_crashes() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    cfg.write_intensive = true;
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    crash_loop(db, 2, 3, || {});
}

#[test]
fn pmem_lsm_survives_repeated_crashes() {
    for variant in [LsmVariant::NoFilter, LsmVariant::PinK] {
        let dev = PmemDevice::optane(1 << 30);
        let mut cfg = PmemLsmConfig::tiny(variant);
        cfg.log = small_log();
        let db = PmemLsm::create(Arc::clone(&dev), cfg).unwrap();
        crash_loop(db, 3, 3, || {});
    }
}

#[test]
fn cceh_survives_repeated_crashes() {
    let dev = PmemDevice::optane(1 << 30);
    let db = PmemHash::create(
        Arc::clone(&dev),
        CcehConfig {
            log: small_log(),
            ..CcehConfig::default()
        },
    )
    .unwrap();
    crash_loop(db, 4, 3, || {});
}

#[test]
fn dram_hash_survives_repeated_crashes() {
    let dev = PmemDevice::optane(1 << 30);
    let db = DramHash::create(
        Arc::clone(&dev),
        DramHashConfig {
            log: small_log(),
            ..DramHashConfig::default()
        },
    )
    .unwrap();
    crash_loop(db, 5, 3, || {});
}

/// Un-synced writes may be lost on crash, but recovery must still yield a
/// *prefix-consistent* state: any key whose batch did reach the log is
/// intact, and no value is ever garbage.
#[test]
fn unsynced_tail_loss_is_clean() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..5_000u64 {
        db.put(&mut ctx, k, &(k * 3).to_le_bytes()).unwrap();
    }
    // No sync: the last batches are volatile.
    drop(db);
    dev.crash();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    let mut present = 0u64;
    for k in 0..5_000u64 {
        if db.get(&mut ctx, k, &mut out).unwrap() {
            assert_eq!(out, (k * 3).to_le_bytes(), "key {k} has garbage value");
            present += 1;
        }
    }
    // Most keys were batch-flushed along the way; only the tail can be gone.
    assert!(present >= 4_000, "lost too much: only {present} survived");
}

/// Crash immediately after create: recovery of an empty store works.
#[test]
fn empty_store_recovers() {
    let dev = PmemDevice::optane(512 << 20);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    drop(db);
    dev.crash();
    let mut ctx = ThreadCtx::with_default_cost();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    assert!(!db.get(&mut ctx, 1, &mut out).unwrap());
    db.put(&mut ctx, 1, b"first").unwrap();
    assert!(db.get(&mut ctx, 1, &mut out).unwrap());
}

/// Restart-time ordering (Table 4's qualitative claim): ChameleonDB's
/// restart must be far cheaper than Dram-Hash's at equal key count, and a
/// Write-Intensive-Mode crash must sit in between.
#[test]
fn restart_time_ordering_matches_table4() {
    let keys = 200_000u64;
    let mut times = HashMap::new();
    for which in ["chameleon", "chameleon-wim", "dram-hash"] {
        let dev = PmemDevice::optane(2 << 30);
        let mut ctx = ThreadCtx::with_default_cost();
        let restart_ns = match which {
            "dram-hash" => {
                let mut db = DramHash::create(
                    Arc::clone(&dev),
                    DramHashConfig {
                        log: small_log(),
                        ..DramHashConfig::default()
                    },
                )
                .unwrap();
                for k in 0..keys {
                    db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
                }
                db.sync(&mut ctx).unwrap();
                let t0 = ctx.clock.now();
                db.crash_and_recover(&mut ctx).unwrap();
                ctx.clock.now() - t0
            }
            name => {
                let mut cfg = ChameleonConfig::with_shards(8);
                cfg.log = small_log();
                cfg.write_intensive = name == "chameleon-wim";
                let mut db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
                for k in 0..keys {
                    db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
                }
                db.sync(&mut ctx).unwrap();
                let t0 = ctx.clock.now();
                db.crash_and_recover(&mut ctx).unwrap();
                ctx.clock.now() - t0
            }
        };
        times.insert(which, restart_ns);
    }
    let cham = times["chameleon"];
    let wim = times["chameleon-wim"];
    let dram = times["dram-hash"];
    assert!(
        cham < dram / 2,
        "ChameleonDB restart ({cham}ns) must be far below Dram-Hash ({dram}ns)"
    );
    assert!(
        wim <= dram,
        "WIM-crash restart ({wim}ns) must not exceed Dram-Hash ({dram}ns)"
    );
    assert!(
        wim >= cham,
        "WIM-crash restart ({wim}ns) must be at least normal restart ({cham}ns)"
    );
}
