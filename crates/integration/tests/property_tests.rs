//! Property-based tests (proptest) over the core data structures and the
//! whole store.

use std::collections::HashMap;
use std::sync::Arc;

use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::{hash64, KvStore};
use kvlog::{pack_loc, unpack_loc, LogConfig, StorageLog};
use kvtables::{DramTable, RobinHoodMap, Slot, TableBuilder};
use pmem_sim::{Histogram, PmemDevice, ThreadCtx};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// loc packing is lossless for every offset/hint within range.
    #[test]
    fn loc_roundtrip(off in 0u64..(1 << 46), vlen in 0usize..(1 << 17)) {
        let (o, h) = unpack_loc(pack_loc(off, vlen));
        prop_assert_eq!(o, off);
        prop_assert_eq!(h, vlen);
    }

    /// The tombstone bit never collides with packed locations.
    #[test]
    fn loc_never_sets_bit63(off in 0u64..(1 << 46), vlen in 0usize..(1 << 20)) {
        prop_assert_eq!(pack_loc(off, vlen) >> 63, 0);
    }

    /// Slot encoding is a bijection.
    #[test]
    fn slot_roundtrip(hash: u64, loc in 1u64..u64::MAX) {
        let s = Slot { hash, loc };
        prop_assert_eq!(Slot::decode(&s.encode()), s);
    }

    /// DramTable behaves like a map under arbitrary insert sequences.
    #[test]
    fn dram_table_is_a_map(ops in proptest::collection::vec((0u64..200, 1u64..1000), 1..300)) {
        let mut table = DramTable::new(512);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut ctx = ThreadCtx::with_default_cost();
        for (key, loc) in ops {
            let h = hash64(key);
            let old = table.insert(&mut ctx, Slot::new(h, loc)).unwrap();
            prop_assert_eq!(old, model.insert(h, loc));
        }
        for (h, loc) in &model {
            prop_assert_eq!(table.get(&mut ctx, *h).map(|s| s.loc), Some(*loc));
        }
        prop_assert_eq!(table.len(), model.len());
    }

    /// RobinHoodMap matches a HashMap under mixed insert/remove.
    #[test]
    fn robinhood_is_a_map(
        ops in proptest::collection::vec((0u64..150, proptest::bool::ANY), 1..400)
    ) {
        let mut map = RobinHoodMap::new(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut ctx = ThreadCtx::with_default_cost();
        for (i, (key, remove)) in ops.into_iter().enumerate() {
            let h = hash64(key);
            if remove {
                prop_assert_eq!(map.remove(&mut ctx, h), model.remove(&h));
            } else {
                let loc = i as u64 + 1;
                prop_assert_eq!(map.insert(&mut ctx, h, loc), model.insert(h, loc));
            }
        }
        for (h, loc) in &model {
            prop_assert_eq!(map.get(&mut ctx, *h), Some(*loc));
        }
        prop_assert_eq!(map.len(), model.len());
    }

    /// A built table returns exactly the newest staged version per hash.
    #[test]
    fn table_builder_newest_wins(keys in proptest::collection::vec(0u64..100, 1..200)) {
        let dev = PmemDevice::optane(8 << 20);
        let mut ctx = ThreadCtx::with_default_cost();
        let mut b = TableBuilder::sized_for(keys.len(), 0.7);
        let mut first_loc: HashMap<u64, u64> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let h = hash64(*key);
            let loc = i as u64 + 1;
            let inserted = b.insert(&mut ctx, Slot::new(h, loc), false).unwrap();
            prop_assert_eq!(inserted, !first_loc.contains_key(&h));
            first_loc.entry(h).or_insert(loc);
        }
        let t = b.build(&dev, &mut ctx, 0, 0, 1).unwrap();
        for (h, loc) in &first_loc {
            prop_assert_eq!(t.get(&dev, &mut ctx, *h).map(|s| s.loc), Some(*loc));
        }
    }

    /// Histogram quantiles are monotone and bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(values in proptest::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let quantiles = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let mut prev = 0;
        for &q in &quantiles {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile({q}) = {x} < previous {prev}");
            prev = x;
        }
        prop_assert_eq!(h.quantile(1.0), *values.iter().max().unwrap());
        prop_assert!(h.quantile(0.0) >= h.min());
    }

    /// The log returns exactly what was appended, in scan order per writer.
    #[test]
    fn log_scan_returns_appends(
        values in proptest::collection::vec(proptest::collection::vec(0u8..255, 0..100), 1..50)
    ) {
        let dev = PmemDevice::optane(64 << 20);
        let log = StorageLog::create(dev, LogConfig {
            capacity: 16 << 20,
            ..LogConfig::default()
        }).unwrap();
        let mut ctx = ThreadCtx::with_default_cost();
        let mut w = log.writer();
        let mut locs = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let meta = w.append(&mut ctx, i as u64, v, false).unwrap();
            locs.push(meta.loc());
        }
        w.flush(&mut ctx).unwrap();
        let mut out = Vec::new();
        for (i, (v, loc)) in values.iter().zip(&locs).enumerate() {
            let meta = log.read_entry(&mut ctx, *loc, &mut out).unwrap();
            prop_assert_eq!(meta.key, i as u64);
            prop_assert_eq!(&out, v);
        }
        let mut seen = 0;
        log.scan(&mut ctx, |_| seen += 1).unwrap();
        prop_assert_eq!(seen, values.len());
    }
}

proptest! {
    // The whole-store property is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ChameleonDB equals a HashMap under arbitrary op sequences, including
    /// a crash/recover in the middle.
    #[test]
    fn chameleondb_model_with_crash(
        ops in proptest::collection::vec((0u64..500, 0u8..10), 200..800),
        crash_at in 100usize..200
    ) {
        let dev = PmemDevice::optane(512 << 20);
        let mut cfg = ChameleonConfig::tiny();
        cfg.log = LogConfig { capacity: 64 << 20, ..LogConfig::default() };
        let mut db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut ctx = ThreadCtx::with_default_cost();
        let mut out = Vec::new();
        for (i, (key, op)) in ops.iter().enumerate() {
            if i == crash_at {
                db.sync(&mut ctx).unwrap();
                kvapi::CrashRecover::crash_and_recover(&mut db, &mut ctx).unwrap();
            }
            match op {
                0..=6 => {
                    let v = (key * 31 + i as u64).to_le_bytes().to_vec();
                    db.put(&mut ctx, *key, &v).unwrap();
                    model.insert(*key, v);
                }
                7 => {
                    let expected = model.remove(key).is_some();
                    prop_assert_eq!(db.delete(&mut ctx, *key).unwrap(), expected);
                }
                _ => {
                    let got = db.get(&mut ctx, *key, &mut out).unwrap();
                    prop_assert_eq!(got, model.contains_key(key));
                    if got {
                        prop_assert_eq!(&out, model.get(key).unwrap());
                    }
                }
            }
        }
        for (k, v) in &model {
            prop_assert!(db.get(&mut ctx, *k, &mut out).unwrap());
            prop_assert_eq!(&out, v);
        }
    }

    /// Random put/delete interleavings with value-log GC firing throughout
    /// (small extents, 256B values, lock-step passes): no live entry is
    /// ever lost, no deleted key resurrects, every resolvable location
    /// word reads back the right entry, and the dead-byte accounting
    /// reconciles exactly at the end.
    #[test]
    fn gc_interleavings_never_lose_or_resurrect(
        ops in proptest::collection::vec((0u64..120, 0u8..8), 200..600),
    ) {
        let dev = PmemDevice::optane(256 << 20);
        let mut cfg = ChameleonConfig::tiny();
        cfg.log = LogConfig {
            capacity: 2 << 20,
            batch_bytes: 512,
            max_value: 8 << 10,
            extent_bytes: 16 << 10,
        };
        cfg.bg.synchronous = true;
        let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut ctx = ThreadCtx::with_default_cost();
        let mut out = Vec::new();
        for (i, (key, op)) in ops.iter().enumerate() {
            match op {
                0..=5 => {
                    let mut v = vec![0u8; 256];
                    v[..8].copy_from_slice(&(key * 131 + i as u64).to_le_bytes());
                    db.put(&mut ctx, *key, &v).unwrap();
                    model.insert(*key, v);
                }
                6 => {
                    let expected = model.remove(key).is_some();
                    prop_assert_eq!(db.delete(&mut ctx, *key).unwrap(), expected);
                }
                _ => {
                    let got = db.get(&mut ctx, *key, &mut out).unwrap();
                    prop_assert_eq!(got, model.contains_key(key));
                    if got {
                        prop_assert_eq!(&out, model.get(key).unwrap());
                    }
                }
            }
        }
        db.drain_maintenance().unwrap();
        // Full sweep over the key space: exactly the model's live keys
        // survive, each at its newest value, through every relocation.
        for k in 0..120u64 {
            let got = db.get(&mut ctx, k, &mut out).unwrap();
            prop_assert!(
                got == model.contains_key(&k),
                "key {} liveness wrong (got {}, model {})",
                k,
                got,
                model.contains_key(&k)
            );
            if got {
                prop_assert!(&out == model.get(&k).unwrap(), "key {} stale", k);
            }
        }
        // Exactly-once dead-byte crediting (crash-free run): referenced
        // bytes plus credited dead bytes account for every resident byte.
        let s = db.space_stats();
        let live = db.audit_live_bytes(&mut ctx);
        prop_assert!(
            live + s.dead_bytes == s.appended_bytes,
            "accounting drift: live {} + dead {} != appended {}",
            live,
            s.dead_bytes,
            s.appended_bytes
        );
    }
}

/// Regression: stale-slot dead-byte credits under multi-level churn.
///
/// A version shadowed by a newer one keeps its slot in the ABI or the
/// last level until a merge drops it; GC resolves liveness by the newest
/// version, so it can reclaim (and reuse) the shadowed version's extent
/// first. Crediting the later drop without validating the slot used to
/// count those bytes twice: at bench scale `dead_bytes` overtook
/// `appended_bytes`, the live estimate saturated to zero, and GC went
/// into a thrash loop (120+ passes where ~30 suffice). The small
/// gc-interleavings proptest above never populates the last level, so
/// this pins the multi-level shape deterministically: rotating-skip
/// overwrites (every round spares a different quarter of the keys, so
/// extents die slowly and slots sit shadowed across many GC passes).
#[test]
fn gc_stale_slot_credits_never_double_count() {
    const KEYS: u64 = 600;
    const ROUNDS: u64 = 12;
    let dev = PmemDevice::optane(256 << 20);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 1 << 20,
        batch_bytes: 512,
        max_value: 8 << 10,
        extent_bytes: 16 << 10,
    };
    cfg.bg.synchronous = true;
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let value = |k: u64, round: u64| {
        let mut v = vec![0u8; 256];
        v[..8].copy_from_slice(&k.to_le_bytes());
        v[8..16].copy_from_slice(&round.to_le_bytes());
        v
    };
    let mut newest = vec![0u64; KEYS as usize];
    for k in 0..KEYS {
        db.put(&mut ctx, k, &value(k, 0)).unwrap();
    }
    for round in 1..=ROUNDS {
        for k in 0..KEYS {
            if k % 4 == round % 4 {
                continue;
            }
            db.put(&mut ctx, k, &value(k, round)).unwrap();
            newest[k as usize] = round;
        }
        db.sync(&mut ctx).unwrap();
        // The accounting must stay sane at every round boundary, not
        // just at the end — the double-credit built up monotonically.
        let s = db.space_stats();
        assert!(
            s.dead_bytes <= s.appended_bytes,
            "round {round}: dead {} overtook appended {}",
            s.dead_bytes,
            s.appended_bytes
        );
    }
    db.drain_maintenance().unwrap();
    let m = db.metrics();
    assert!(m.gc_runs > 0, "workload never triggered GC");
    assert!(
        m.stale_credit_skips > 0,
        "no stale slot was ever dropped — the regression shape was not exercised"
    );
    // Exactly-once crediting: resident referenced bytes plus credited
    // dead bytes account for every resident byte.
    let s = db.space_stats();
    let live = db.audit_live_bytes(&mut ctx);
    assert_eq!(
        live + s.dead_bytes,
        s.appended_bytes,
        "accounting drift: audited live {} + dead {} != appended {}",
        live,
        s.dead_bytes,
        s.appended_bytes
    );
    // And the churn survived: every key reads back its newest version.
    let mut out = Vec::new();
    for k in 0..KEYS {
        assert!(db.get(&mut ctx, k, &mut out).unwrap(), "key {k} lost");
        assert_eq!(&out, &value(k, newest[k as usize]), "key {k} stale");
    }
}
