//! kvlog recovery properties under enumerated fence-point crashes:
//! torn-batch boundaries, extent-boundary entries, and tombstone replay
//! ordering. Each test enumerates *every* fence of a deterministic append
//! sequence, crashes there, reopens, and checks the recovered entry set.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use kvlog::{LogConfig, StorageLog, ENTRY_HEADER, EXTENT};
use pmem_sim::{CrashPoint, PmemDevice, ThreadCtx};

fn small_cfg() -> LogConfig {
    LogConfig {
        capacity: 8 << 20,
        batch_bytes: 128,
        max_value: 4096,
        extent_bytes: EXTENT,
    }
}

/// Runs `appends` against a fresh log armed to crash at fence `k`.
/// Returns `(completed_appends, survivor_seqs)` where survivors come from
/// a post-crash `reopen_with` scan. Panics (re-raises) on non-crash
/// panics; asserts the crash actually fired.
fn crash_at(
    cfg: &LogConfig,
    k: u64,
    appends: &[(u64, usize, bool)], // (key, value_len, tombstone)
) -> (u64, Vec<u64>) {
    let dev = PmemDevice::optane(64 << 20);
    let log = StorageLog::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let region = log.region();
    let completed = Cell::new(0u64);
    dev.arm_crash_at_fence(k);
    let res = catch_unwind(AssertUnwindSafe(|| {
        let mut ctx = ThreadCtx::with_default_cost();
        let mut w = log.writer();
        for &(key, vlen, tomb) in appends {
            let value = vec![key as u8; vlen];
            w.append(&mut ctx, key, &value, tomb).unwrap();
            completed.set(completed.get() + 1);
        }
        w.flush(&mut ctx).unwrap();
    }));
    match res {
        Ok(()) => panic!("fence {k} never fired"),
        Err(payload) => {
            if payload.downcast::<CrashPoint>().is_err() {
                panic!("append sequence panicked before fence {k}");
            }
        }
    }
    dev.crash();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut seqs = Vec::new();
    drop(log);
    let _reopened = StorageLog::reopen_with(dev, region, cfg.clone(), &mut ctx, |meta| {
        seqs.push(meta.seq)
    })
    .expect("reopen after crash at fence {k} must succeed");
    seqs.sort_unstable();
    (completed.get(), seqs)
}

/// Total fences of the crash-free append sequence.
fn total_fences(cfg: &LogConfig, appends: &[(u64, usize, bool)]) -> u64 {
    let dev = PmemDevice::optane(64 << 20);
    let log = StorageLog::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut w = log.writer();
    for &(key, vlen, tomb) in appends {
        let value = vec![key as u8; vlen];
        w.append(&mut ctx, key, &value, tomb).unwrap();
    }
    w.flush(&mut ctx).unwrap();
    dev.fence_count()
}

/// Crashing at every fence of a batched append stream must leave an exact
/// contiguous seq prefix — no holes, no reordering — whose lost tail is
/// bounded by one log batch.
#[test]
fn torn_batches_leave_an_exact_bounded_prefix() {
    let cfg = small_cfg();
    // 40-byte values -> 64-byte entries -> a fence every 2 entries
    // (batch_bytes 128), plus extent-claim fences.
    let appends: Vec<(u64, usize, bool)> = (0..120u64).map(|k| (k, 40, false)).collect();
    let batch_entries = (cfg.batch_bytes / (ENTRY_HEADER + 40)) as u64 + 1;
    let fences = total_fences(&cfg, &appends);
    assert!(fences >= 40, "expected a fence-dense stream, got {fences}");

    let mut prev_m = 0u64;
    for k in 1..=fences {
        let (completed, seqs) = crash_at(&cfg, k, &appends);
        let m = seqs.len() as u64;
        // Exact contiguous prefix 1..=m.
        assert_eq!(
            seqs,
            (1..=m).collect::<Vec<u64>>(),
            "fence {k}: survivors are not a contiguous seq prefix"
        );
        // Monotone in the crash point.
        assert!(
            m >= prev_m,
            "fence {k}: durable prefix shrank ({prev_m} -> {m})"
        );
        prev_m = m;
        // The fence fires mid-append, so the triggering entry may be
        // durable before its append returns.
        assert!(m <= completed + 1, "fence {k}: entries from the future");
        // Acknowledged-tail bound: at most one un-fenced batch is lost.
        assert!(
            completed - m.min(completed) <= batch_entries,
            "fence {k}: lost {} entries, more than one batch ({batch_entries})",
            completed - m.min(completed)
        );
    }
}

/// Entries sized so four fill an extent exactly: crash points around
/// extent claims must recover cleanly, and a reopened log resumes at the
/// next extent boundary rather than reusing a torn extent tail.
#[test]
fn extent_boundary_entries_recover_and_resume_on_boundaries() {
    let cfg = LogConfig {
        capacity: 32 << 20,
        batch_bytes: 128,
        max_value: (EXTENT / 2) as usize,
        extent_bytes: EXTENT,
    };
    let vlen = (EXTENT / 4) as usize - ENTRY_HEADER;
    let appends: Vec<(u64, usize, bool)> = (0..10u64).map(|k| (k, vlen, false)).collect();
    let fences = total_fences(&cfg, &appends);
    // Every entry overflows the batch, and every fourth claims an extent.
    assert!(fences >= 10, "expected >= 10 fences, got {fences}");
    for k in 1..=fences {
        let (completed, seqs) = crash_at(&cfg, k, &appends);
        let m = seqs.len() as u64;
        assert_eq!(seqs, (1..=m).collect::<Vec<u64>>());
        assert!(m <= completed + 1);
    }

    // Crash-free reopen: the cursor resumes at an extent boundary and new
    // appends are visible to a subsequent scan alongside the old ones.
    let dev = PmemDevice::optane(64 << 20);
    let log = StorageLog::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let region = log.region();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut w = log.writer();
    for &(key, vlen, tomb) in &appends[..5] {
        w.append(&mut ctx, key, &vec![key as u8; vlen], tomb)
            .unwrap();
    }
    w.flush(&mut ctx).unwrap();
    drop(w);
    drop(log);
    dev.crash();
    let log = StorageLog::reopen(Arc::clone(&dev), region, cfg.clone(), &mut ctx).unwrap();
    assert_eq!(log.last_seq(), 5);
    let mut w = log.writer();
    let meta = w.append(&mut ctx, 99, b"tail", false).unwrap();
    assert_eq!(
        (meta.off - region.off) % log.extent_bytes(),
        0,
        "reopen must resume on an extent boundary (got off {})",
        meta.off
    );
    w.flush(&mut ctx).unwrap();
    let mut seen = Vec::new();
    log.scan(&mut ctx, |meta| seen.push((meta.seq, meta.key)))
        .unwrap();
    seen.sort_unstable();
    assert_eq!(seen.len(), 6);
    assert_eq!(seen[5], (6, 99));
}

/// Interleaved put/delete/put streams: after a crash at any fence, a
/// latest-wins replay must equal the model folded over the surviving seq
/// prefix — tombstones must neither outlive a newer put nor resurrect an
/// older one.
#[test]
fn tombstone_replay_matches_the_truncated_model() {
    let cfg = small_cfg();
    // 8 keys, 96 ops: put k, delete (k+1)%8 every third op, re-put later.
    let mut appends: Vec<(u64, usize, bool)> = Vec::new();
    for r in 0..96u64 {
        let key = r % 8;
        if r % 3 == 2 {
            appends.push((key, 0, true));
        } else {
            appends.push((key, 24, false));
        }
    }
    let fences = total_fences(&cfg, &appends);
    for k in 1..=fences {
        let dev = PmemDevice::optane(64 << 20);
        let log = StorageLog::create(Arc::clone(&dev), cfg.clone()).unwrap();
        let region = log.region();
        dev.arm_crash_at_fence(k);
        let res = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = ThreadCtx::with_default_cost();
            let mut w = log.writer();
            for &(key, vlen, tomb) in &appends {
                w.append(&mut ctx, key, &vec![key as u8; vlen], tomb)
                    .unwrap();
            }
            w.flush(&mut ctx).unwrap();
        }));
        match res {
            Ok(()) => panic!("fence {k} never fired"),
            Err(payload) => match payload.downcast::<CrashPoint>() {
                Ok(_) => dev.crash(),
                Err(other) => resume_unwind(other),
            },
        }
        drop(log);
        let mut ctx = ThreadCtx::with_default_cost();
        // Latest-wins replay of the survivors.
        let mut state: HashMap<u64, (u64, bool)> = HashMap::new(); // key -> (seq, tombstone)
        let mut max_seq = 0u64;
        let log = StorageLog::reopen_with(dev, region, cfg.clone(), &mut ctx, |meta| {
            max_seq = max_seq.max(meta.seq);
            let e = state.entry(meta.key).or_insert((meta.seq, meta.tombstone));
            if meta.seq >= e.0 {
                *e = (meta.seq, meta.tombstone);
            }
        })
        .unwrap();
        drop(log);
        // The model folded over the surviving prefix (seq i+1 = op i).
        let mut model: HashMap<u64, bool> = HashMap::new(); // key -> deleted?
        for (i, &(key, _, tomb)) in appends.iter().take(max_seq as usize).enumerate() {
            let _ = i;
            model.insert(key, tomb);
        }
        for (key, deleted) in model {
            match state.get(&key) {
                Some(&(_, tomb)) => assert_eq!(
                    tomb, deleted,
                    "fence {k}: key {key} replayed to the wrong liveness"
                ),
                None => panic!("fence {k}: key {key} missing from replay"),
            }
        }
    }
}
