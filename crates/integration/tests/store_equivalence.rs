//! Model-based equivalence: every store must behave like a HashMap under
//! a randomized workload of puts, overwrites, deletes, and gets.

use std::collections::HashMap;
use std::sync::Arc;

use baselines::{
    CcehConfig, DramHash, DramHashConfig, LsmVariant, MatrixKv, MatrixKvConfig, NoveLsm,
    NoveLsmConfig, PmemHash, PmemLsm, PmemLsmConfig,
};
use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::KvStore;
use kvlog::LogConfig;
use pmem_sim::{PmemDevice, ThreadCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: usize = 30_000;
const KEY_SPACE: u64 = 4_000;

fn drive(store: &dyn KvStore, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for i in 0..OPS {
        let key = rng.gen_range(0..KEY_SPACE);
        match rng.gen_range(0..10) {
            // 60% put (fresh or overwrite)
            0..=5 => {
                let len = rng.gen_range(0..64);
                let mut v = vec![0u8; len];
                rng.fill(&mut v[..]);
                store.put(&mut ctx, key, &v).expect("put");
                model.insert(key, v);
            }
            // 20% delete
            6..=7 => {
                let expected = model.remove(&key).is_some();
                let got = store.delete(&mut ctx, key).expect("delete");
                assert_eq!(got, expected, "delete({key}) presence at op {i}");
            }
            // 20% get
            _ => {
                let got = store.get(&mut ctx, key, &mut out).expect("get");
                match model.get(&key) {
                    Some(v) => {
                        assert!(got, "get({key}) missing at op {i}");
                        assert_eq!(&out, v, "get({key}) wrong value at op {i}");
                    }
                    None => assert!(!got, "get({key}) phantom at op {i}"),
                }
            }
        }
    }
    // Full final audit.
    for (k, v) in &model {
        assert!(
            store.get(&mut ctx, *k, &mut out).expect("get"),
            "final: {k} missing"
        );
        assert_eq!(&out, v, "final: {k} wrong value");
    }
    for k in 0..KEY_SPACE {
        if !model.contains_key(&k) {
            assert!(
                !store.get(&mut ctx, k, &mut out).expect("get"),
                "final: {k} phantom"
            );
        }
    }
}

fn small_log() -> LogConfig {
    LogConfig {
        capacity: 128 << 20,
        ..LogConfig::default()
    }
}

#[test]
fn chameleondb_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    let db = ChameleonDb::create(dev, cfg).unwrap();
    drive(&db, 0xC0FFEE);
}

#[test]
fn chameleondb_write_intensive_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    cfg.write_intensive = true;
    let db = ChameleonDb::create(dev, cfg).unwrap();
    drive(&db, 0xC0FFE1);
}

#[test]
fn chameleondb_level_by_level_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    cfg.compaction = chameleondb::CompactionScheme::LevelByLevel;
    let db = ChameleonDb::create(dev, cfg).unwrap();
    drive(&db, 0xC0FFE2);
}

#[test]
fn pmem_lsm_variants_match_model() {
    for variant in [LsmVariant::NoFilter, LsmVariant::Filter, LsmVariant::PinK] {
        let dev = PmemDevice::optane(1 << 30);
        let mut cfg = PmemLsmConfig::tiny(variant);
        cfg.log = small_log();
        let db = PmemLsm::create(dev, cfg).unwrap();
        drive(&db, 0x1517 + variant as u64);
    }
}

#[test]
fn cceh_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let db = PmemHash::create(
        dev,
        CcehConfig {
            log: small_log(),
            ..CcehConfig::default()
        },
    )
    .unwrap();
    drive(&db, 0xCCE4);
}

#[test]
fn dram_hash_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let db = DramHash::create(
        dev,
        DramHashConfig {
            log: small_log(),
            ..DramHashConfig::default()
        },
    )
    .unwrap();
    drive(&db, 0xD4A);
}

#[test]
fn novelsm_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let db = NoveLsm::create(
        dev,
        NoveLsmConfig {
            memtable_entries: 512,
            ratio: 4,
            log: small_log(),
            ..NoveLsmConfig::default()
        },
    )
    .unwrap();
    drive(&db, 0x4072);
}

#[test]
fn matrixkv_matches_model() {
    let dev = PmemDevice::optane(1 << 30);
    let db = MatrixKv::create(
        dev,
        MatrixKvConfig {
            memtable_entries: 512,
            l0_rows: 4,
            ratio: 4,
            log: small_log(),
            ..MatrixKvConfig::default()
        },
    )
    .unwrap();
    drive(&db, 0x3477);
}

/// All stores with the same workload agree with each other (transitively
/// via the model, but this asserts cross-store value equality directly).
#[test]
fn stores_agree_on_final_state() {
    let mk = |_: usize| -> (Arc<PmemDevice>, Box<dyn KvStore>) {
        let dev = PmemDevice::optane(1 << 30);
        let mut cfg = ChameleonConfig::tiny();
        cfg.log = small_log();
        let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
        (dev, Box::new(db))
    };
    let (_d1, a) = mk(0);
    let dev2 = PmemDevice::optane(1 << 30);
    let b: Box<dyn KvStore> = Box::new(
        DramHash::create(
            Arc::clone(&dev2),
            DramHashConfig {
                log: small_log(),
                ..DramHashConfig::default()
            },
        )
        .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(42);
    let mut ctx = ThreadCtx::with_default_cost();
    for _ in 0..20_000 {
        let key = rng.gen_range(0..KEY_SPACE);
        let v = rng.gen::<u64>().to_le_bytes();
        a.put(&mut ctx, key, &v).unwrap();
        b.put(&mut ctx, key, &v).unwrap();
    }
    let mut oa = Vec::new();
    let mut ob = Vec::new();
    for k in 0..KEY_SPACE {
        let ha = a.get(&mut ctx, k, &mut oa).unwrap();
        let hb = b.get(&mut ctx, k, &mut ob).unwrap();
        assert_eq!(ha, hb, "presence differs for {k}");
        if ha {
            assert_eq!(oa, ob, "values differ for {k}");
        }
    }
}
