//! Crash-matrix fault injection: enumerated fence-point crashes with a
//! shadow-model audit, plus targeted regression tests for the recovery
//! bugs the matrix originally caught (allocator hole leak, double crash
//! during replay).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use chameleondb::{ChameleonDb, CompactionScheme};
use integration::crashmat::{self, MatrixConfig};
use kvapi::KvStore;
use pmem_sim::{CrashPoint, PmemDevice, ThreadCtx};

/// A bounded slice of the crash matrix (every 11th fence) must audit
/// clean under the acknowledged-write invariant, and must hit the
/// maintenance stages the workload is designed to cross.
#[test]
fn bounded_matrix_direct_scheme_has_no_violations() {
    let cfg = MatrixConfig::quick(CompactionScheme::Direct);
    let report = crashmat::run_matrix(&cfg, |_, _| {});
    assert!(
        report.violations.is_empty(),
        "crash matrix violations: {:#?}",
        report.violations
    );
    assert!(report.points_tested >= 20, "matrix too small: {report:#?}");
    assert!(report.nested_crashes >= 1, "no nested recovery crash fired");
    let staged: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(
        staged.contains(&"foreground"),
        "no foreground crash point: {staged:?}"
    );
}

/// Same bounded slice for the level-by-level compaction cascade.
#[test]
fn bounded_matrix_level_by_level_scheme_has_no_violations() {
    let cfg = MatrixConfig::quick(CompactionScheme::LevelByLevel);
    let report = crashmat::run_matrix(&cfg, |_, _| {});
    assert!(
        report.violations.is_empty(),
        "crash matrix violations: {:#?}",
        report.violations
    );
}

/// GC slice of the matrix: small extents + churn make value-log GC
/// passes (copy-forward relocation, index repoints, Gc manifest commits,
/// extent reclaims) run inside the enumerated fence window, so torn GC
/// commits become crash points. The dry run must prove GC actually fired
/// — otherwise the slice silently tests nothing new.
#[test]
fn bounded_matrix_gc_slice_has_no_violations() {
    let cfg = MatrixConfig::quick_gc(CompactionScheme::Direct);
    let script = crashmat::build_script_churn(cfg.keys, cfg.churn);
    let (_, metrics) = crashmat::dry_run_with_metrics(&cfg, &script);
    assert!(
        metrics.gc_runs > 0 && metrics.gc_reclaimed_extents > 0,
        "GC matrix workload never ran GC: {metrics:?}"
    );
    let report = crashmat::run_matrix(&cfg, |_, _| {});
    assert!(
        report.violations.is_empty(),
        "GC crash matrix violations: {:#?}",
        report.violations
    );
}

/// Torn-GC-commit regression: a dense (stride-1) enumeration of a
/// churn-heavy workload whose fence stream is dominated by GC passes.
/// Crashing at every fence inside copy-forward relocation, index
/// repointing, the Gced-state persist, the manifest Gc commit and the
/// extent reclaim must always recover each reference to one complete
/// entry — old location or new, never neither.
#[test]
fn torn_gc_commits_recover_to_old_or_new_location() {
    let cfg = MatrixConfig {
        keys: 64,
        stride: 1,
        nested_every: 0,
        scheme: CompactionScheme::Direct,
        device_bytes: 64 << 20,
        gc: true,
        churn: 200,
    };
    let report = crashmat::run_matrix(&cfg, |_, _| {});
    assert!(
        report.violations.is_empty(),
        "torn GC commit violations: {:#?}",
        report.violations
    );
    let gc_points: u64 = report
        .stages
        .iter()
        .filter(|s| s.stage == "gc")
        .map(|s| s.points)
        .sum();
    assert!(
        gc_points > 0,
        "no crash point landed inside a GC pass: {:?}",
        report.stages
    );
}

/// Regression: the allocator must rebuild its free list from the gaps
/// between live regions on recovery. The legacy bump-past-high-water reset
/// leaked every hole left by pre-crash compactions, so repeated
/// crash-recover cycles of a steady-state workload grew the arena without
/// bound. With the gap rebuild the high-water mark stabilizes.
#[test]
fn repeated_crash_recover_cycles_keep_footprint_bounded() {
    let dev = PmemDevice::optane(64 << 20);
    let cfg = crashmat::store_config(CompactionScheme::Direct);
    let mut ctx = ThreadCtx::with_default_cost();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut db = Some(db);

    let mut high_water = Vec::new();
    for cycle in 0..10u64 {
        let store = db.as_ref().unwrap();
        // Steady-state churn: overwrite one fixed key set, forcing
        // flushes and compactions that free superseded tables.
        for k in 0..400u64 {
            let v = [cycle as u8, k as u8, 0, 0, 0, 0, 0, 0];
            store.put(&mut ctx, k, &v).unwrap();
        }
        store.checkpoint(&mut ctx).unwrap();
        drop(db.take());
        dev.crash();
        db = Some(ChameleonDb::recover(Arc::clone(&dev), cfg.clone(), &mut ctx).unwrap());
        high_water.push(dev.allocator_high_water());
    }
    // The workload is identical every cycle; once warm, the footprint
    // must stop growing (modulo one table of slack for flush timing).
    let warm = high_water[4];
    let last = *high_water.last().unwrap();
    assert!(
        last <= warm + (64 << 10),
        "allocator footprint grew without bound across crash cycles: {high_water:?}"
    );
    // And the data survived.
    let store = db.as_ref().unwrap();
    let mut out = Vec::new();
    for k in 0..400u64 {
        assert!(store.get(&mut ctx, k, &mut out).unwrap(), "key {k} lost");
    }
}

/// Regression: Write-Intensive/Get-Protect MemTable merges leave entries
/// that live only in the DRAM ABI and the log. A later Normal-mode flush
/// used to stamp its L0 table with the MemTable's max log seq — a claim
/// covering those older ABI-only entries — so recovery derived a
/// `checkpoint_seq` past them and skipped their replay, losing synced
/// writes. The flush must cap its claim below the oldest unpersisted ABI
/// entry (found by the crash matrix at the flush→last-compaction window
/// of a checkpoint).
#[test]
fn wim_merged_entries_survive_flush_then_crash() {
    let cfg = chameleondb::ChameleonConfig {
        memtable_slots: 16,
        log: kvlog::LogConfig {
            capacity: 8 << 20,
            batch_bytes: 512,
            max_value: 4096,
            ..kvlog::LogConfig::default()
        },
        ..chameleondb::ChameleonConfig::with_shards(1)
    };
    let dev = PmemDevice::optane(64 << 20);
    let mut ctx = ThreadCtx::with_default_cost();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();

    // Several MemTable→ABI merges: these keys end up in the log and the
    // DRAM ABI, but in no table.
    db.set_mode(chameleondb::Mode::WriteIntensive);
    for k in 0..64u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    db.sync(&mut ctx).unwrap();

    // Back in Normal mode, enough fresh puts to fire at least one
    // MemTable flush; its L0 commit advances the shard checkpoint.
    db.set_mode(chameleondb::Mode::Normal);
    for k in 1000..1024u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    db.sync(&mut ctx).unwrap();
    assert!(db.metrics().flushes > 0, "workload never flushed");

    drop(db);
    dev.crash();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    for k in (0..64u64).chain(1000..1024) {
        assert!(
            db.get(&mut ctx, k, &mut out).unwrap(),
            "synced key {k} lost: flush claimed a checkpoint past ABI-only entries"
        );
        assert_eq!(out, k.to_le_bytes(), "key {k} stale");
    }
}

/// Regression: a second power failure during recovery's own log replay
/// must not lose anything the first recovery was rebuilding. Replay
/// flushes MemTables (and commits manifests) mid-recovery; crashing at
/// each of those fences and recovering again must still satisfy the
/// acknowledged-write invariant.
#[test]
fn double_crash_during_replay_loses_nothing_acknowledged() {
    let cfg = crashmat::store_config(CompactionScheme::Direct);
    let fib = [1u64, 2, 3, 5, 8, 13, 21, 34, 55];
    let mut nested_fired = 0;
    for &offset in &fib {
        let dev = PmemDevice::optane(64 << 20);
        let mut ctx = ThreadCtx::with_default_cost();
        let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
        // Write-Intensive Mode keeps everything out of persistent tables
        // (MemTables merge into the DRAM ABI), so the whole key set stays
        // above checkpoint_seq: replay must re-admit all of it, overflowing
        // MemTables and flushing — i.e. fencing — during recovery.
        db.set_mode(chameleondb::Mode::WriteIntensive);
        for k in 0..300u64 {
            db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
        }
        db.sync(&mut ctx).unwrap();
        drop(db);
        dev.crash();

        // Crash `offset` fences into the replay, then recover again. An
        // offset past the end of the replay simply recovers clean.
        dev.arm_crash_at_fence(dev.fence_count() + offset);
        let first = catch_unwind(AssertUnwindSafe(|| {
            ChameleonDb::recover(Arc::clone(&dev), cfg.clone(), &mut ctx)
        }));
        let db = match first {
            Ok(Ok(db)) => {
                dev.disarm_crash();
                db
            }
            Ok(Err(e)) => panic!("offset {offset}: first recovery errored: {e}"),
            Err(payload) => match payload.downcast::<CrashPoint>() {
                Ok(_) => {
                    nested_fired += 1;
                    dev.crash();
                    ChameleonDb::recover(Arc::clone(&dev), cfg.clone(), &mut ctx)
                        .unwrap_or_else(|e| panic!("offset {offset}: second recovery failed: {e}"))
                }
                Err(other) => resume_unwind(other),
            },
        };
        let mut out = Vec::new();
        for k in 0..300u64 {
            assert!(
                db.get(&mut ctx, k, &mut out).unwrap(),
                "offset {offset}: acknowledged key {k} lost after double crash"
            );
            assert_eq!(out, k.to_le_bytes(), "offset {offset}: key {k} stale");
        }
    }
    assert!(
        nested_fired >= 5,
        "replay fenced too little: only {nested_fired} nested crashes fired"
    );
}
