//! Multi-threaded integration tests: concurrent correctness and
//! simulated-time sanity across the stores.

use std::sync::Arc;

use baselines::{
    CcehConfig, DramHash, DramHashConfig, LsmVariant, PmemHash, PmemLsm, PmemLsmConfig,
};
use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::KvStore;
use kvlog::LogConfig;
use pmem_sim::{CostModel, PmemDevice, ThreadCtx};

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

fn small_log() -> LogConfig {
    LogConfig {
        capacity: 256 << 20,
        ..LogConfig::default()
    }
}

/// Each thread writes and reads its own key range concurrently; afterwards
/// a single thread audits everything.
fn hammer(store: &dyn KvStore, dev: &PmemDevice) {
    dev.set_active_threads(THREADS as u32);
    let cost = Arc::new(CostModel::default());
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let cost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, t);
                let base = (t as u64) << 32;
                let mut out = Vec::new();
                for i in 0..PER_THREAD {
                    let k = base + i;
                    store.put(&mut ctx, k, &k.to_le_bytes()).expect("put");
                    if i % 7 == 0 {
                        assert!(store.get(&mut ctx, k, &mut out).expect("get"));
                        assert_eq!(out, k.to_le_bytes());
                    }
                    if i % 13 == 0 && i > 0 {
                        store.delete(&mut ctx, base + i - 1).expect("delete");
                    }
                }
            });
        }
    })
    .expect("scope");

    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for t in 0..THREADS as u64 {
        let base = t << 32;
        for i in 0..PER_THREAD {
            let k = base + i;
            let deleted = i + 1 < PER_THREAD && (i + 1) % 13 == 0;
            let got = store.get(&mut ctx, k, &mut out).expect("get");
            assert_eq!(got, !deleted, "key {k} presence (deleted={deleted})");
            if got {
                assert_eq!(out, k.to_le_bytes());
            }
        }
    }
}

#[test]
fn chameleondb_concurrent_hammer() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::with_shards(32);
    cfg.memtable_slots = 128;
    cfg.log = small_log();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    hammer(&db, &dev);
}

#[test]
fn pmem_lsm_concurrent_hammer() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = PmemLsmConfig::with_shards(LsmVariant::Filter, 32);
    cfg.memtable_slots = 128;
    cfg.log = small_log();
    let db = PmemLsm::create(Arc::clone(&dev), cfg).unwrap();
    hammer(&db, &dev);
}

#[test]
fn cceh_concurrent_hammer() {
    let dev = PmemDevice::optane(1 << 30);
    let db = PmemHash::create(
        Arc::clone(&dev),
        CcehConfig {
            log: small_log(),
            ..CcehConfig::default()
        },
    )
    .unwrap();
    hammer(&db, &dev);
}

#[test]
fn dram_hash_concurrent_hammer() {
    let dev = PmemDevice::optane(1 << 30);
    let db = DramHash::create(
        Arc::clone(&dev),
        DramHashConfig {
            log: small_log(),
            ..DramHashConfig::default()
        },
    )
    .unwrap();
    hammer(&db, &dev);
}

/// Concurrent writers to the *same* keys: last writer (by log sequence)
/// must win after recovery, and no torn values may appear.
#[test]
fn concurrent_same_key_writes_are_atomic() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = small_log();
    let db = Arc::new(ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap());
    let cost = Arc::new(CostModel::default());
    crossbeam::thread::scope(|s| {
        for t in 0..4usize {
            let db = Arc::clone(&db);
            let cost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, t);
                for i in 0..5_000u64 {
                    // All threads fight over 64 keys; value encodes writer.
                    let k = i % 64;
                    let v = [t as u8; 24];
                    db.put(&mut ctx, k, &v).expect("put");
                }
            });
        }
    })
    .expect("scope");
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for k in 0..64u64 {
        assert!(db.get(&mut ctx, k, &mut out).unwrap());
        assert_eq!(out.len(), 24);
        // No torn value: all bytes identical.
        assert!(
            out.iter().all(|&b| b == out[0]),
            "torn value for {k}: {out:?}"
        );
    }
    // Same invariant after crash+recovery.
    let mut ctx2 = ThreadCtx::with_default_cost();
    db.sync(&mut ctx2).unwrap();
    drop(db);
    dev.crash();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx2).unwrap();
    for k in 0..64u64 {
        assert!(db.get(&mut ctx2, k, &mut out).unwrap());
        assert!(
            out.iter().all(|&b| b == out[0]),
            "torn after recovery for {k}"
        );
    }
}

/// Simulated throughput must improve with threads for a shard-parallel
/// store (sanity of the clock/contention model end to end).
#[test]
fn simulated_time_scales_with_threads() {
    let run = |threads: usize| -> u64 {
        let dev = PmemDevice::optane(1 << 30);
        let mut cfg = ChameleonConfig::with_shards(64);
        cfg.log = small_log();
        let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
        dev.set_active_threads(threads as u32);
        let cost = Arc::new(CostModel::default());
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let db = &db;
                    let cost = Arc::clone(&cost);
                    s.spawn(move |_| {
                        let mut ctx = ThreadCtx::for_thread(cost, t);
                        let base = (t as u64) << 40;
                        for i in 0..(80_000 / threads as u64) {
                            db.put(&mut ctx, base + i, b"12345678").expect("put");
                        }
                        ctx.clock.now()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap()
        })
        .expect("scope")
    };
    let t1 = run(1);
    let t8 = run(8);
    assert!(
        t8 * 3 < t1,
        "8 threads should be at least 3x faster in simulated time: {t8} vs {t1}"
    );
}
