//! End-to-end tests of the reactor I/O model over real TCP loopback:
//! torn frames reassembled on the wire, connection scaling far past the
//! thread count, acked-durability under an injected crash at 1k
//! connections, slow-consumer shedding with bounded memory, lossless
//! RETRY backpressure, near-zero idle wakeups, idle-peer reaping, and
//! graceful shutdown draining in-flight work.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use chameleon_obs::{ObsConfig, ServerObs};
use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::KvStore;
use kvclient::{Client, RetryPolicy, StatsFormat, WriteOutcome};
use kvserver::proto::{decode_response, encode_request, Request, Response};
use kvserver::{IoModel, KvServer, ServerConfig};
use pmem_sim::{PmemDevice, ThreadCtx};

fn test_store_config() -> ChameleonConfig {
    ChameleonConfig {
        memtable_slots: 4096,
        obs: ObsConfig::on(),
        ..ChameleonConfig::tiny()
    }
}

fn start_server(
    dev: &Arc<PmemDevice>,
    store: &Arc<ChameleonDb>,
    cfg: ServerConfig,
) -> (KvServer, std::net::SocketAddr) {
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(dev),
        Arc::clone(store),
        Arc::new(ServerObs::new()),
        cfg,
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

fn value_for(key: u64) -> Vec<u8> {
    format!("value-{key:016x}").into_bytes()
}

/// Reads one `chameleon_<section>_<name>` gauge out of Prometheus text.
fn gauge(prom: &str, metric: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("gauge {metric} missing from STATS"))
}

fn frame_of_request(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Reads exactly one length-prefixed response off a raw stream.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("response length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("response payload");
    decode_response(&payload).expect("valid response")
}

/// Tentpole: requests torn into single bytes (and bundled many-per-write)
/// on the real wire are reassembled by the reactor exactly as the framing
/// property tests promise.
#[test]
fn torn_and_bundled_frames_over_real_tcp() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(&dev, &store, ServerConfig::default());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();

    // Byte-by-byte: the cruelest tearing TCP can produce.
    let put = frame_of_request(&Request::Put {
        req_id: 1,
        key: 7,
        value: b"torn".to_vec(),
        durable: true,
        traced: false,
    });
    for b in &put {
        stream.write_all(std::slice::from_ref(b)).unwrap();
        stream.flush().unwrap();
    }
    match read_response(&mut stream) {
        Response::Ok { req_id: 1 } => {}
        other => panic!("torn put got {other:?}"),
    }

    // A torn boundary inside the length prefix of frame two, with frame
    // one bundled in front of it.
    let get_a = frame_of_request(&Request::Get { req_id: 2, key: 7 });
    let get_b = frame_of_request(&Request::Get { req_id: 3, key: 7 });
    let mut wire = get_a;
    wire.extend_from_slice(&get_b);
    let cut = wire.len() - get_b.len() + 2; // mid-prefix of frame two
    stream.write_all(&wire[..cut]).unwrap();
    stream.flush().unwrap();
    thread::sleep(Duration::from_millis(20));
    stream.write_all(&wire[cut..]).unwrap();
    stream.flush().unwrap();
    for want_id in [2u64, 3] {
        match read_response(&mut stream) {
            Response::Value { req_id, value } => {
                assert_eq!(req_id, want_id);
                assert_eq!(value, b"torn");
            }
            other => panic!("get {want_id} got {other:?}"),
        }
    }
    server.shutdown().unwrap();
}

/// A garbage frame (undecodable opcode) is fatal for the connection,
/// but the ERR reply must reach the wire before the close — the client
/// sees ERR then EOF, never a bare EOF. Regression: the reactor once
/// doomed the connection and discarded the queued ERR unflushed.
#[test]
fn garbage_frame_gets_err_then_eof() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(&dev, &store, ServerConfig::default());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&3u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xff, 0xff, 0xff]).unwrap();
    stream.flush().unwrap();

    match read_response(&mut stream) {
        Response::Err { req_id: 0, .. } => {}
        other => panic!("garbage frame got {other:?}, want Err"),
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean EOF after ERR");
    assert!(rest.is_empty(), "unexpected bytes after ERR: {rest:?}");
    server.shutdown().unwrap();
}

/// Tentpole acceptance: 1k concurrent connections served by a fixed
/// thread pool (≤ 16 service threads), every connection completing
/// durable work, and every ack surviving an injected crash.
#[test]
fn thousand_connections_acked_writes_survive_crash() {
    let dev = PmemDevice::optane(512 << 20);
    let cfg = test_store_config();
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            lanes: 4,
            io: IoModel::Reactor { workers: 4 },
            max_batch: 64,
            max_hold: Duration::from_micros(500),
            ..ServerConfig::default()
        },
    );
    assert!(
        server.thread_count() <= 16,
        "reactor must serve 1k conns from a fixed pool, got {} threads",
        server.thread_count()
    );

    const THREADS: u64 = 8;
    const CONNS_PER_THREAD: u64 = 125; // 1000 total
    let acked: Arc<Mutex<HashMap<u64, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let crashed = Arc::new(AtomicBool::new(false));
    let drivers: Vec<_> = (0..THREADS)
        .map(|t| {
            let acked = Arc::clone(&acked);
            let crashed = Arc::clone(&crashed);
            thread::spawn(move || {
                // Open all this thread's connections first so the full
                // 1k are concurrently established, then do durable work
                // on every one of them.
                let mut clients = Vec::new();
                for _ in 0..CONNS_PER_THREAD {
                    // A 1000-way connect burst can still outrun even the
                    // widened backlog on one core; a refused SYN is the
                    // client's problem to retry.
                    let c = (0..50)
                        .find_map(|_| match Client::connect(addr) {
                            Ok(c) => Some(c),
                            Err(_) => {
                                thread::sleep(Duration::from_millis(20));
                                None
                            }
                        })
                        .expect("connect kept failing after retries");
                    clients.push(c);
                }
                let mut round = 0u64;
                'outer: loop {
                    for (i, c) in clients.iter_mut().enumerate() {
                        if crashed.load(Ordering::SeqCst) {
                            break 'outer;
                        }
                        let key = (t << 40) | ((i as u64) << 20) | round;
                        let val = value_for(key);
                        match c.put(key, &val, true) {
                            Ok(WriteOutcome::Done { .. }) => {
                                acked.lock().unwrap().insert(key, val);
                            }
                            Ok(WriteOutcome::Retry) => thread::yield_now(),
                            Err(_) => break 'outer, // crash tore the socket
                        }
                    }
                    round += 1;
                }
            })
        })
        .collect();

    // Wait until every connection has at least one ack in flight-history,
    // then crash while holding the ack map.
    let t0 = Instant::now();
    loop {
        let n = acked.lock().unwrap().len();
        if n >= 1000 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "only {n} acks after 120s"
        );
        thread::sleep(Duration::from_millis(50));
    }
    let survivors: HashMap<u64, Vec<u8>> = {
        let guard = acked.lock().unwrap();
        dev.crash();
        guard.clone()
    };
    crashed.store(true, Ordering::SeqCst);
    server.abort();
    for h in drivers {
        h.join().unwrap();
    }
    assert!(survivors.len() >= 1000);

    drop(store);
    let mut ctx = ThreadCtx::with_default_cost();
    let recovered = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    for (key, val) in &survivors {
        assert!(
            recovered.get(&mut ctx, *key, &mut out).unwrap(),
            "acked key {key:#x} lost by crash under 1k connections"
        );
        assert_eq!(&out, val, "acked key {key:#x} recovered torn");
    }
}

/// Satellite regression (unbounded response queue): a client that sends
/// pipelined requests but never reads must be disconnected once its
/// unsent responses hit the configured byte cap — instead of queueing
/// server memory without bound — and the shed must be observable.
#[test]
fn wedged_client_is_shed_with_bounded_memory() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let cap: usize = 32 << 10;
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            resp_queue_cap: cap,
            ..ServerConfig::default()
        },
    );

    // A fat value so a handful of unread GET responses overflow the cap.
    let fat = vec![0xABu8; 8 << 10];
    let mut setup = Client::connect(addr).unwrap();
    setup.put(1, &fat, true).unwrap();

    // The wedge: pipeline GETs for the fat value and never read. The
    // kernel's receive window fills, the server's per-connection queue
    // hits the cap, and the connection must be shed.
    let mut wedged = TcpStream::connect(addr).unwrap();
    wedged.set_nodelay(true).unwrap();
    let mut req_id = 1u64;
    let mut shed = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let frame = frame_of_request(&Request::Get { req_id, key: 1 });
        req_id += 1;
        if wedged.write_all(&frame).is_err() {
            shed = true; // server reset the socket mid-write
            break;
        }
        if req_id.is_multiple_of(64) {
            thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(shed, "wedged connection was never disconnected");

    // The shed is counted, and no connection holds more than the cap in
    // queued response bytes.
    let prom = setup.stats(StatsFormat::Prometheus).unwrap();
    assert!(
        gauge(&prom, "chameleon_server_slow_consumer_disconnects") >= 1,
        "slow-consumer shed not counted"
    );
    let queued = gauge(&prom, "chameleon_reactor_queued_bytes");
    assert!(
        queued <= cap as u64,
        "queued_bytes {queued} exceeds per-conn cap {cap} with one live conn"
    );

    // A healthy client is unaffected.
    assert_eq!(setup.get(1).unwrap().as_deref(), Some(&fat[..]));
    server.shutdown().unwrap();
}

/// Satellite: lane backpressure under the reactor is lossless — every
/// RETRY-ed durable put eventually lands, and nothing is dropped.
#[test]
fn backpressure_retry_is_lossless_under_reactor() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            lanes: 1,
            queue_cap: 8,
            max_batch: 4,
            max_hold: Duration::from_micros(100),
            ..ServerConfig::default()
        },
    );

    let retries = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let retries = Arc::clone(&retries);
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let policy = RetryPolicy::default();
                for n in 0..128u64 {
                    let key = (t << 32) | n;
                    let got_retry = c
                        .put_retrying_with(key, &value_for(key), true, &policy)
                        .expect("retried put must land");
                    retries.fetch_add(got_retry, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }

    // Every write landed regardless of how many RETRYs the tiny lane
    // queue produced.
    let mut c = Client::connect(addr).unwrap();
    for t in 0..4u64 {
        for n in 0..128u64 {
            let key = (t << 32) | n;
            assert_eq!(
                c.get(key).unwrap().as_deref(),
                Some(&value_for(key)[..]),
                "key {key:#x} lost under backpressure"
            );
        }
    }
    server.shutdown().unwrap();
}

/// Satellite regression (busy-poll removal): an idle reactor barely
/// wakes. With one silent connection parked for half a second, each
/// worker's poll loop should tick a handful of times (timeout-driven),
/// not hundreds (sleep-loop driven).
#[test]
fn idle_reactor_polls_near_zero() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            io: IoModel::Reactor { workers: 4 },
            // Sampler off so only I/O activity moves the counters.
            window_cap: 0,
            ..ServerConfig::default()
        },
    );

    let mut c = Client::connect(addr).unwrap();
    let before = gauge(
        &c.stats(StatsFormat::Prometheus).unwrap(),
        "chameleon_reactor_polls",
    );
    thread::sleep(Duration::from_millis(500));
    let after = gauge(
        &c.stats(StatsFormat::Prometheus).unwrap(),
        "chameleon_reactor_polls",
    );
    // 4 workers × 500ms at the clamped 1s idle-poll timeout is ~4
    // timeout ticks plus the two STATS round-trips; a busy-poll loop
    // would show thousands.
    assert!(
        after - before <= 40,
        "idle reactor polled {} times in 500ms — busy-polling",
        after - before
    );
    server.shutdown().unwrap();
}

/// Satellite (half-open peers): a connection that goes silent past the
/// idle timeout is reaped and counted, so dead peers cannot pin
/// Satellite regression (ISSUE 10): a slow-but-live reader must not be
/// reaped as idle. The client pipelines far more response bytes than
/// the kernel will buffer, then goes read-silent past the idle timeout
/// while the server still holds queued response bytes (`queued_bytes >
/// 0` — an obligation, not idleness). Draining afterwards must yield
/// every response, with `idle_disconnects` still zero.
#[test]
fn slow_reader_with_queued_bytes_is_not_reaped() {
    let dev = PmemDevice::optane(512 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            // Generous: this test wants queued bytes, not shedding.
            resp_queue_cap: 64 << 20,
            ..ServerConfig::default()
        },
    );

    let big = vec![0xB7u8; 1 << 17];
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(
        c.put(1, &big, true).unwrap(),
        WriteOutcome::Done { existed: true }
    );

    // 16 MiB of responses, no reads: loopback buffers a few MiB at
    // most, so the rest sits in the connection's out-queue across many
    // sweep periods (the sweep runs at idle/4).
    let n = 128u64;
    let ids: Vec<u64> = (0..n)
        .map(|_| {
            c.send(kvclient::Request::Get { req_id: 0, key: 1 })
                .unwrap()
        })
        .collect();
    c.flush().unwrap();
    thread::sleep(Duration::from_millis(600));

    // Drain slowly; every response must still arrive, in order.
    for id in ids {
        match c.recv_for(id) {
            Ok(Response::Value { value, .. }) => assert_eq!(value.len(), big.len()),
            other => panic!("slow reader lost its connection: {other:?}"),
        }
    }

    let prom = c.stats(StatsFormat::Prometheus).unwrap();
    assert_eq!(
        gauge(&prom, "chameleon_server_idle_disconnects"),
        0,
        "idle sweep reaped a connection with queued response bytes"
    );
    server.shutdown().unwrap();
}

/// per-connection state forever.
#[test]
fn idle_connection_times_out_and_is_reaped() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    );

    let mut silent = TcpStream::connect(addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server must close us without ever receiving a byte.
    let mut buf = [0u8; 16];
    match silent.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes from server"),
        Err(e) => panic!("expected EOF from idle reap, got {e:?}"),
    }

    let mut c = Client::connect(addr).unwrap();
    let prom = c.stats(StatsFormat::Prometheus).unwrap();
    assert!(
        gauge(&prom, "chameleon_server_idle_disconnects") >= 1,
        "idle reap not counted"
    );
    server.shutdown().unwrap();
}

/// Satellite: graceful shutdown drains — durable work accepted before
/// the stop is committed and its acks are flushed to the wire, not
/// dropped on the floor.
#[test]
fn graceful_shutdown_drains_inflight_acks() {
    let dev = PmemDevice::optane(256 << 20);
    let cfg = test_store_config();
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            lanes: 2,
            max_batch: 32,
            max_hold: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    );

    let mut c = Client::connect(addr).unwrap();
    let ids: Vec<u64> = (0..256u64)
        .map(|k| c.send_put(k, &value_for(k), true).unwrap())
        .collect();
    c.flush().unwrap();

    // Shut down with all 256 acks potentially still in flight. The
    // committers must drain their queues and the workers must flush the
    // resulting acks before the sockets close.
    // Wait for the first ack so the stop provably lands with work both
    // accepted (in lanes) and still unread (in socket buffers).
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut ok = 0u32;
    let mut answered = 0u32;
    let first = ids[0];
    match c.recv_for(first).unwrap() {
        Response::Ok { .. } => {
            ok += 1;
            answered += 1;
        }
        Response::Retry { .. } => answered += 1,
        other => panic!("unexpected first response {other:?}"),
    }
    let shutdown = thread::spawn(move || server.shutdown());
    for id in ids.into_iter().skip(1) {
        match c.recv_for(id) {
            // Accepted before the stop: committed and acked.
            Ok(Response::Ok { .. }) => {
                ok += 1;
                answered += 1;
            }
            // Read but not accepted (lane full, or lanes already
            // closed): explicitly answered, never silently dropped.
            Ok(Response::Retry { .. }) => answered += 1,
            Ok(Response::Err { message, .. }) => {
                assert!(
                    message.contains("shutting down"),
                    "unexpected error during drain: {message}"
                );
                answered += 1;
            }
            Ok(other) => panic!("unexpected response {other:?}"),
            // EOF is legal only after every read request was answered.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset
                ) =>
            {
                break;
            }
            Err(e) => panic!("read failed during drain: {e:?}"),
        }
    }
    shutdown.join().unwrap().expect("graceful shutdown");
    assert_eq!(
        answered, 256,
        "drain dropped responses: only {answered} of 256 answered"
    );
    assert!(ok >= 1, "no put was accepted before the stop");

    // Everything acked Ok is durable in the recovered store.
    drop(c);
    let mut ctx = ThreadCtx::with_default_cost();
    let recovered = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    let mut present = 0u32;
    for k in 0..256u64 {
        if recovered.get(&mut ctx, k, &mut out).unwrap() {
            assert_eq!(out, value_for(k));
            present += 1;
        }
    }
    assert!(
        present >= ok,
        "shutdown acked {ok} keys but only {present} recovered"
    );
}
