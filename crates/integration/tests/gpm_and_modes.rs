//! Get-Protect Mode and mode-transition behaviour (§2.4).

use std::sync::Arc;

use chameleondb::{ChameleonConfig, ChameleonDb, GpmConfig, Mode};
use kvapi::KvStore;
use kvlog::LogConfig;
use pmem_sim::{PmemDevice, ThreadCtx};

fn gpm_store(max_dumps: usize) -> (Arc<PmemDevice>, ChameleonDb) {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 256 << 20,
        ..LogConfig::default()
    };
    cfg.max_abi_dumps = max_dumps;
    cfg.gpm = GpmConfig {
        enabled: true,
        enter_threshold_ns: 1, // hair trigger: first window enters GPM
        exit_threshold_ns: 0,  // never exits
        window_ops: 16,
    };
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    (dev, db)
}

/// Force GPM, fill the ABI, and verify the dump path: the ABI is persisted
/// unmerged and remains searchable; data stays correct throughout.
#[test]
fn gpm_dumps_abi_instead_of_merging() {
    let (_dev, db) = gpm_store(1);
    let mut ctx = ThreadCtx::with_default_cost();
    // Trip the GPM monitor with a burst of gets.
    for k in 0..64u64 {
        db.put(&mut ctx, k, b"warm").unwrap();
    }
    let mut out = Vec::new();
    for _ in 0..64 {
        db.get(&mut ctx, 1, &mut out).unwrap();
    }
    assert_eq!(db.mode(), Mode::GetProtect, "hair-trigger GPM must engage");

    // In GPM, MemTables merge into the ABI; pushing enough distinct keys
    // fills it (tiny config: ~4096-slot ABIs) and forces a dump.
    let n = 80_000u64;
    for k in 0..n {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    let m = db.metrics();
    assert!(m.abi_dumps > 0, "expected ABI dumps, got {m:?}");
    assert_eq!(m.flushes, 0, "GPM must suspend MemTable flushes");
    // Every key remains readable (some now live in dumped tables).
    for k in (0..n).step_by(97) {
        assert!(db.get(&mut ctx, k, &mut out).unwrap(), "key {k} missing");
        assert_eq!(out, k.to_le_bytes());
    }
    assert!(m.dumped_hits + db.metrics().dumped_hits > 0 || db.metrics().last_hits > 0);
}

/// Once the dump budget is exhausted, a full ABI falls back to last-level
/// compaction even inside GPM.
#[test]
fn gpm_dump_budget_falls_back_to_compaction() {
    let (_dev, db) = gpm_store(1);
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for _ in 0..64 {
        db.get(&mut ctx, 1, &mut out).unwrap();
    }
    for k in 0..200_000u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    let m = db.metrics();
    assert!(m.abi_dumps >= 1);
    assert!(
        m.last_compactions > 0,
        "budget exhausted: last-level compactions must run, got {m:?}"
    );
    for k in (0..200_000u64).step_by(997) {
        assert!(db.get(&mut ctx, k, &mut out).unwrap(), "key {k} missing");
    }
}

/// Dumped ABI tables survive a crash and are merged back into the last
/// level once the store leaves GPM and resumes flushing.
#[test]
fn dumped_tables_survive_crash_and_merge_back() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 256 << 20,
        ..LogConfig::default()
    };
    cfg.gpm = GpmConfig {
        enabled: true,
        enter_threshold_ns: 1,
        exit_threshold_ns: 0,
        window_ops: 16,
    };
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for _ in 0..64 {
        db.get(&mut ctx, 1, &mut out).unwrap();
    }
    for k in 0..80_000u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    let dumps = db.metrics().abi_dumps;
    assert!(dumps > 0);
    db.sync(&mut ctx).unwrap();
    drop(db);
    dev.crash();

    // Recover with GPM disabled: normal operation resumes, and the next
    // flushes fold the dumped tables into the last level.
    let mut cfg2 = cfg.clone();
    cfg2.gpm = GpmConfig::default();
    let db = ChameleonDb::recover(Arc::clone(&dev), cfg2, &mut ctx).unwrap();
    for k in (0..80_000u64).step_by(71) {
        assert!(
            db.get(&mut ctx, k, &mut out).unwrap(),
            "key {k} lost across crash"
        );
        assert_eq!(out, k.to_le_bytes());
    }
    // Drive more puts so every shard flushes at least once, absorbing dumps.
    for k in 80_000..160_000u64 {
        db.put(&mut ctx, k, &k.to_le_bytes()).unwrap();
    }
    for k in (0..160_000u64).step_by(311) {
        assert!(
            db.get(&mut ctx, k, &mut out).unwrap(),
            "key {k} lost after merge-back"
        );
    }
}

/// Write-Intensive Mode can be toggled repeatedly at runtime without
/// losing data, and the store keeps serving both modes' structures.
#[test]
fn repeated_mode_toggling_is_safe() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 256 << 20,
        ..LogConfig::default()
    };
    let db = ChameleonDb::create(dev, cfg).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    let mut next = 0u64;
    for round in 0..6 {
        db.set_mode(if round % 2 == 0 {
            Mode::WriteIntensive
        } else {
            Mode::Normal
        });
        for _ in 0..20_000 {
            db.put(&mut ctx, next, &next.to_le_bytes()).unwrap();
            next += 1;
        }
        for k in (0..next).step_by(503) {
            assert!(
                db.get(&mut ctx, k, &mut out).unwrap(),
                "round {round}: key {k}"
            );
        }
    }
    assert!(db.metrics().wim_merges > 0);
    assert!(db.metrics().flushes > 0);
}
