//! Reader-vs-maintenance stress: lock-free gets racing flushes, dumps,
//! WIM merges, and both compaction schemes.
//!
//! The contract under test (the epoch-published read path): an
//! acknowledged put is visible to any *subsequent* get on any thread,
//! and no get ever observes a torn slot or a value for the wrong key —
//! even while the shard's writer freezes MemTables, dumps ABIs, and
//! dooms compacted tables underneath the readers.
//!
//! Protocol: each writer owns a key range. A *stable* key is only ever
//! overwritten; after every put the writer publishes the new version in
//! a shared ack word (Release). A reader first loads the ack (Acquire),
//! then gets: if the ack claimed version `v`, the get MUST find the key
//! with version `>= v`. *Churn* keys are deleted and re-put, so readers
//! only check self-consistency on them (a hit must carry the right key);
//! a final single-threaded audit checks their end state.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use chameleondb::{ChameleonConfig, ChameleonDb, CompactionScheme, GpmConfig, Mode};
use kvapi::KvStore;
use kvlog::LogConfig;
use pmem_sim::{CostModel, PmemDevice, ThreadCtx};

const STABLE_PER_WRITER: u64 = 2048;
const CHURN_PER_WRITER: u64 = 256;

fn value_for(key: u64, version: u64) -> [u8; 16] {
    let mut v = [0u8; 16];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(out: &[u8]) -> (u64, u64) {
    assert_eq!(out.len(), 16, "torn value: wrong length");
    (
        u64::from_le_bytes(out[..8].try_into().unwrap()),
        u64::from_le_bytes(out[8..].try_into().unwrap()),
    )
}

fn stable_key(writer: usize, i: u64) -> u64 {
    ((writer as u64) << 32) | i
}

fn churn_key(writer: usize, i: u64) -> u64 {
    ((writer as u64) << 32) | (1 << 24) | i
}

struct Stress {
    db: ChameleonDb,
    /// acks[writer][i]: latest acknowledged version of stable key i.
    acks: Vec<Vec<AtomicU64>>,
    writers_left: AtomicUsize,
    stop: AtomicBool,
}

/// Runs `writers` put threads (versioned overwrites + churn
/// delete/re-put) against `readers` get threads enforcing the ack-floor
/// protocol, then audits the end state single-threaded.
fn run_stress(cfg: ChameleonConfig, writers: usize, readers: usize, rounds: u64) -> Stress {
    let dev = PmemDevice::optane(1 << 30);
    let db = ChameleonDb::create(Arc::clone(&dev), cfg).unwrap();
    dev.set_active_threads((writers + readers) as u32);
    let cost = Arc::new(CostModel::default());

    let st = Stress {
        db,
        acks: (0..writers)
            .map(|_| (0..STABLE_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
            .collect(),
        writers_left: AtomicUsize::new(writers),
        stop: AtomicBool::new(false),
    };

    crossbeam::thread::scope(|s| {
        for w in 0..writers {
            let st = &st;
            let cost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, w);
                for round in 1..=rounds {
                    for i in 0..STABLE_PER_WRITER {
                        let k = stable_key(w, i);
                        st.db.put(&mut ctx, k, &value_for(k, round)).expect("put");
                        // Ack: the put is now claimed visible to any
                        // subsequent get on any thread.
                        st.acks[w][i as usize].store(round, Ordering::Release);
                    }
                    for i in 0..CHURN_PER_WRITER {
                        let k = churn_key(w, i);
                        if round.is_multiple_of(2) {
                            st.db.delete(&mut ctx, k).expect("delete");
                        }
                        st.db.put(&mut ctx, k, &value_for(k, round)).expect("put");
                    }
                }
                if st.writers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                    st.stop.store(true, Ordering::Release);
                }
            });
        }
        for r in 0..readers {
            let st = &st;
            let cost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, writers + r);
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (r as u64) << 17;
                let mut out = Vec::new();
                while !st.stop.load(Ordering::Acquire) {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let w = (rng >> 32) as usize % writers;
                    if rng.is_multiple_of(8) {
                        // Churn key: only self-consistency on a hit.
                        let k = churn_key(w, rng % CHURN_PER_WRITER);
                        if st.db.get(&mut ctx, k, &mut out).expect("get") {
                            let (vk, _) = decode(&out);
                            assert_eq!(vk, k, "hit returned a value for the wrong key");
                        }
                    } else {
                        let i = rng % STABLE_PER_WRITER;
                        let k = stable_key(w, i);
                        // Load the floor BEFORE the get: everything acked
                        // at this point must be visible to the probe.
                        let floor = st.acks[w][i as usize].load(Ordering::Acquire);
                        let found = st.db.get(&mut ctx, k, &mut out).expect("get");
                        if floor > 0 {
                            assert!(found, "stable key {k} acked at v{floor} but not found");
                            let (vk, vv) = decode(&out);
                            assert_eq!(vk, k, "hit returned a value for the wrong key");
                            assert!(
                                vv >= floor,
                                "stale read past ack: key {k} acked v{floor}, got v{vv}"
                            );
                        }
                    }
                }
            });
        }
    })
    .expect("scope");

    // Single-threaded end-state audit: every key holds its final version.
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for w in 0..writers {
        for i in 0..STABLE_PER_WRITER {
            let k = stable_key(w, i);
            assert!(st.db.get(&mut ctx, k, &mut out).unwrap(), "key {k} lost");
            assert_eq!(decode(&out), (k, rounds), "key {k} final version");
        }
        for i in 0..CHURN_PER_WRITER {
            let k = churn_key(w, i);
            assert!(st.db.get(&mut ctx, k, &mut out).unwrap(), "churn {k} lost");
            assert_eq!(decode(&out), (k, rounds), "churn {k} final version");
        }
    }
    st
}

fn stress_cfg() -> ChameleonConfig {
    let mut cfg = ChameleonConfig::tiny();
    cfg.log = LogConfig {
        capacity: 256 << 20,
        ..LogConfig::default()
    };
    cfg
}

/// Direct compaction under reader fire (the CI slice).
#[test]
fn readers_vs_maintenance_direct() {
    let st = run_stress(stress_cfg(), 2, 4, 3);
    let m = st.db.metrics();
    assert!(m.flushes > 0, "workload must drive flushes");
    assert!(m.mid_compactions > 0, "workload must drive mid compactions");
    assert!(m.view_publishes > 0, "transitions must republish views");
}

/// Level-by-level compaction under reader fire (the CI slice).
#[test]
fn readers_vs_maintenance_level_by_level() {
    let mut cfg = stress_cfg();
    cfg.compaction = CompactionScheme::LevelByLevel;
    let st = run_stress(cfg, 2, 4, 3);
    let m = st.db.metrics();
    assert!(m.flushes > 0 && m.mid_compactions > 0);
}

/// WIM merges and GPM ABI dumps under reader fire: a hair-trigger GPM
/// monitor flips the store into Get-Protect as soon as readers start, so
/// MemTables merge into the ABI and full ABIs dump unmerged — all while
/// readers keep probing the views those transitions replace.
#[test]
fn readers_vs_wim_merges_and_abi_dumps() {
    let mut cfg = stress_cfg();
    cfg.gpm = GpmConfig {
        enabled: true,
        enter_threshold_ns: 1, // first window enters GPM
        exit_threshold_ns: 0,  // never exits
        window_ops: 16,
    };
    cfg.max_abi_dumps = 2;
    // One shard so the test's ~4.6k distinct keys overflow its ~4096-slot
    // ABI and force unmerged dumps (and, past `max_abi_dumps`, the
    // dumped-table fold-back) — all of it under reader fire.
    cfg.shards = 1;
    let st = run_stress(cfg, 2, 4, 4);
    let m = st.db.metrics();
    assert_eq!(st.db.mode(), Mode::GetProtect);
    assert!(m.wim_merges > 0, "GPM must merge MemTables into the ABI");
    assert!(m.abi_dumps > 0, "full ABIs must dump unmerged under GPM");
}

/// Background-pipeline torture config: one worker and a frozen-queue
/// cap of 1, so the writers outrun maintenance and hit the backpressure
/// stall path while frozen tables sit reader-visible in the queue.
fn bg_torture_cfg() -> ChameleonConfig {
    let mut cfg = stress_cfg();
    cfg.bg.workers = 1;
    cfg.bg.frozen_queue_cap = 1;
    cfg
}

/// Background maintenance torture, direct scheme: readers enforce the
/// ack-floor protocol while the worker pool flushes and compacts behind
/// the puts, and the tiny frozen queue forces writers into stalls.
#[test]
fn readers_vs_background_pipeline_stalls_direct() {
    let st = run_stress(bg_torture_cfg(), 2, 4, 3);
    let m = st.db.metrics();
    assert!(m.flushes > 0, "workload must drive flushes");
    assert!(m.mid_compactions > 0, "workload must drive mid compactions");
    assert!(
        m.write_stalls > 0,
        "cap-1 frozen queue with one worker must backpressure the writers"
    );
}

/// Background maintenance torture under the level-by-level scheme.
#[test]
fn readers_vs_background_pipeline_stalls_level_by_level() {
    let mut cfg = bg_torture_cfg();
    cfg.compaction = CompactionScheme::LevelByLevel;
    let st = run_stress(cfg, 2, 4, 3);
    let m = st.db.metrics();
    assert!(m.flushes > 0 && m.mid_compactions > 0);
    assert!(m.write_stalls > 0, "torture config must stall writers");
}

/// Runtime mode switches while the background pipeline is saturated:
/// frozen tables enqueued under one mode may be processed under another
/// (mode is evaluated when the worker picks the job up), and readers
/// must never notice.
#[test]
fn readers_vs_background_pipeline_mode_switches() {
    let dev = PmemDevice::optane(1 << 30);
    let db = ChameleonDb::create(Arc::clone(&dev), bg_torture_cfg()).unwrap();
    dev.set_active_threads(3);
    let cost = Arc::new(CostModel::default());
    let stop = AtomicBool::new(false);
    let ack = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        let ack = &ack;
        let wcost = Arc::clone(&cost);
        s.spawn(move |_| {
            let mut ctx = ThreadCtx::for_thread(wcost, 0);
            for round in 1..=6u64 {
                db.set_mode(if round.is_multiple_of(2) {
                    Mode::WriteIntensive
                } else {
                    Mode::Normal
                });
                for i in 0..4096u64 {
                    db.put(&mut ctx, i, &value_for(i, round)).expect("put");
                    ack.store(round * 4096 + i, Ordering::Release);
                }
            }
            stop.store(true, Ordering::Release);
        });
        for r in 0..2usize {
            let rcost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(rcost, 1 + r);
                let mut out = Vec::new();
                let mut x = 1u64 + r as u64;
                while !stop.load(Ordering::Acquire) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let floor = ack.load(Ordering::Acquire);
                    if floor == 0 {
                        continue;
                    }
                    let k = x % 4096;
                    if floor >= 4096 + k {
                        assert!(
                            db.get(&mut ctx, k, &mut out).expect("get"),
                            "acked key {k} missing (ack cursor {floor})"
                        );
                        let (vk, vv) = decode(&out);
                        assert_eq!(vk, k);
                        assert!(vv >= 1);
                    }
                }
            });
        }
    })
    .expect("scope");
    // Settle the pipeline, then audit the end state single-threaded.
    db.drain_maintenance().unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    let mut out = Vec::new();
    for k in 0..4096u64 {
        assert!(db.get(&mut ctx, k, &mut out).unwrap(), "key {k} lost");
        assert_eq!(decode(&out), (k, 6));
    }
    let m = db.metrics();
    assert!(m.wim_merges > 0, "WIM phases must merge");
    assert!(m.flushes > 0, "Normal phases must flush");
}

/// The full-size variant (not part of the default CI slice).
#[test]
#[ignore = "long-running full stress; CI runs the quick slices above"]
fn readers_vs_maintenance_full() {
    let st = run_stress(stress_cfg(), 4, 8, 10);
    let m = st.db.metrics();
    assert!(m.last_compactions > 0, "full run must reach the last level");
}

/// Explicit runtime mode switches (Normal ↔ Write-Intensive) while
/// readers and a writer are live: switching must not disturb visibility.
#[test]
fn readers_vs_runtime_mode_switches() {
    let dev = PmemDevice::optane(1 << 30);
    let db = ChameleonDb::create(Arc::clone(&dev), stress_cfg()).unwrap();
    dev.set_active_threads(3);
    let cost = Arc::new(CostModel::default());
    let stop = AtomicBool::new(false);
    let ack = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        let ack = &ack;
        let wcost = Arc::clone(&cost);
        s.spawn(move |_| {
            let mut ctx = ThreadCtx::for_thread(wcost, 0);
            for round in 1..=6u64 {
                db.set_mode(if round.is_multiple_of(2) {
                    Mode::WriteIntensive
                } else {
                    Mode::Normal
                });
                for i in 0..4096u64 {
                    db.put(&mut ctx, i, &value_for(i, round)).expect("put");
                    ack.store(round * 4096 + i, Ordering::Release);
                }
            }
            stop.store(true, Ordering::Release);
        });
        for r in 0..2usize {
            let rcost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(rcost, 1 + r);
                let mut out = Vec::new();
                let mut x = 1u64 + r as u64;
                while !stop.load(Ordering::Acquire) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let floor = ack.load(Ordering::Acquire);
                    if floor == 0 {
                        continue;
                    }
                    // The ack cursor is round*4096+i; key k is guaranteed
                    // present once the round-1 put of k is acked.
                    let k = x % 4096;
                    if floor >= 4096 + k {
                        assert!(
                            db.get(&mut ctx, k, &mut out).expect("get"),
                            "acked key {k} missing (ack cursor {floor})"
                        );
                        let (vk, vv) = decode(&out);
                        assert_eq!(vk, k);
                        assert!(vv >= 1);
                    }
                }
            });
        }
    })
    .expect("scope");
    let m = db.metrics();
    assert!(m.wim_merges > 0, "WIM phases must merge");
    assert!(m.flushes > 0, "Normal phases must flush");
}

/// Post-restart degraded reads: before a shard's ABI is rebuilt, gets
/// walk the upper tables newest-first (pre-sorted once per view, not per
/// get) and the window is observable via the `degraded_gets` counter.
#[test]
fn degraded_reads_after_restart_are_counted_and_correct() {
    let dev = PmemDevice::optane(1 << 30);
    let cfg = stress_cfg();
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..20_000u64 {
        db.put(&mut ctx, k, &value_for(k, 1)).unwrap();
    }
    db.sync(&mut ctx).unwrap();
    drop(db);
    dev.crash();

    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    assert_eq!(db.metrics().degraded_gets, 0);
    // Pure reads: ABIs rebuild lazily on writes, so these all take the
    // degraded upper-level walk — and must still be correct.
    let mut out = Vec::new();
    for k in (0..20_000u64).step_by(37) {
        assert!(db.get(&mut ctx, k, &mut out).unwrap(), "key {k} lost");
        assert_eq!(decode(&out), (k, 1));
    }
    let degraded = db.metrics().degraded_gets;
    assert!(
        degraded > 0,
        "post-restart gets must be counted as degraded"
    );

    // A put per shard triggers the rebuild; once every ABI is back the
    // degraded counter stops moving.
    for k in 0..20_000u64 {
        db.put(&mut ctx, k, &value_for(k, 2)).unwrap();
    }
    assert!(db.metrics().abi_rebuilds > 0);
    let settled = db.metrics().degraded_gets;
    for k in (0..20_000u64).step_by(37) {
        assert!(db.get(&mut ctx, k, &mut out).unwrap());
        assert_eq!(decode(&out), (k, 2));
    }
    assert_eq!(
        db.metrics().degraded_gets,
        settled,
        "gets after the ABI rebuild must not take the degraded path"
    );
}

/// Audits one range scan taken while writers race: `floor` stable keys
/// of writer `w` were acked (in ascending key order) before the scan
/// started, so a window starting at index `i0 < floor` must open with
/// the contiguous acked run (up to `floor` or the limit). Keys past that
/// run raced with the writers — each must still decode to a key some
/// writer could legitimately have put (no phantoms), and the whole
/// result must be strictly ascending.
fn audit_racing_scan(keys: &[u64], w: usize, i0: u64, limit: u64, floor: u64, writers: usize) {
    assert!(
        keys.len() as u64 <= limit,
        "scan returned more than its limit"
    );
    for pair in keys.windows(2) {
        assert!(pair[0] < pair[1], "scan not strictly ascending: {pair:?}");
    }
    let guaranteed = (floor - i0).min(limit);
    assert!(
        keys.len() as u64 >= guaranteed,
        "scan from writer {w} index {i0} returned {} keys but {guaranteed} were acked in-window",
        keys.len()
    );
    for (j, &k) in keys.iter().take(guaranteed as usize).enumerate() {
        assert_eq!(
            k,
            stable_key(w, i0 + j as u64),
            "scan missed an acked stable key (writer {w}, start {i0}, floor {floor})"
        );
    }
    for &k in &keys[guaranteed as usize..] {
        let kw = (k >> 32) as usize;
        let rest = k & 0xFFFF_FFFF;
        assert!(kw < writers, "phantom key {k:#x}: no such writer");
        if rest & (1 << 24) != 0 {
            assert!(
                (rest ^ (1 << 24)) < CHURN_PER_WRITER,
                "phantom churn key {k:#x}"
            );
        } else {
            assert!(rest < STABLE_PER_WRITER, "phantom stable key {k:#x}");
        }
    }
}

/// Range scans racing concurrent puts and deletes. Writers run the usual
/// stress mix (versioned overwrites of stable keys, delete/re-put churn)
/// while scanner threads sweep windows of the stable ranges and hold
/// every result to the shadow model: no acked key missing, no phantom
/// keys, strict order. Afterwards one full scan must agree exactly with
/// the live key set — deletions must not resurrect and re-puts must not
/// duplicate.
#[test]
fn scans_vs_concurrent_puts_and_deletes() {
    let writers = 2usize;
    let rounds = 3u64;
    let dev = PmemDevice::optane(1 << 30);
    let db = ChameleonDb::create(Arc::clone(&dev), stress_cfg()).unwrap();
    dev.set_active_threads((writers + 2) as u32);
    let cost = Arc::new(CostModel::default());
    let stop = AtomicBool::new(false);
    let writers_left = AtomicUsize::new(writers);
    // present[w]: stable keys of writer w put at least once. Stable keys
    // are first inserted in ascending order, so presence is a prefix and
    // one cursor per writer is a complete shadow of round 1.
    let present: Vec<AtomicU64> = (0..writers).map(|_| AtomicU64::new(0)).collect();

    crossbeam::thread::scope(|s| {
        for w in 0..writers {
            let (db, present, stop, writers_left) = (&db, &present, &stop, &writers_left);
            let cost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, w);
                for round in 1..=rounds {
                    for i in 0..STABLE_PER_WRITER {
                        let k = stable_key(w, i);
                        db.put(&mut ctx, k, &value_for(k, round)).expect("put");
                        if round == 1 {
                            present[w].store(i + 1, Ordering::Release);
                        }
                    }
                    for i in 0..CHURN_PER_WRITER {
                        let k = churn_key(w, i);
                        if round.is_multiple_of(2) {
                            db.delete(&mut ctx, k).expect("delete");
                        }
                        db.put(&mut ctx, k, &value_for(k, round)).expect("put");
                    }
                }
                if writers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                    stop.store(true, Ordering::Release);
                }
            });
        }
        for r in 0..2usize {
            let (db, present, stop) = (&db, &present, &stop);
            let cost = Arc::clone(&cost);
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, writers + r);
                let mut rng = 0xA5A5_5A5A_0F0F_F0F0u64 ^ ((r as u64) << 21);
                while !stop.load(Ordering::Acquire) {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let w = (rng >> 32) as usize % writers;
                    // Floor BEFORE the scan: everything below it is acked
                    // and must appear in the scan's window.
                    let floor = present[w].load(Ordering::Acquire);
                    if floor == 0 {
                        continue;
                    }
                    let i0 = rng % floor;
                    let limit = 1 + (rng >> 17) % 128;
                    let keys = db
                        .scan(&mut ctx, stable_key(w, i0), limit as usize)
                        .expect("scan");
                    audit_racing_scan(&keys, w, i0, limit, floor, writers);
                }
            });
        }
    })
    .expect("scope");

    // End state, single-threaded: every stable and churn key is live
    // (each round ends with a re-put), so one full scan must reproduce
    // the exact sorted key set.
    let mut ctx = ThreadCtx::with_default_cost();
    let mut expected: Vec<u64> = Vec::new();
    for w in 0..writers {
        expected.extend((0..STABLE_PER_WRITER).map(|i| stable_key(w, i)));
        expected.extend((0..CHURN_PER_WRITER).map(|i| churn_key(w, i)));
    }
    expected.sort_unstable();
    let scanned = db.scan(&mut ctx, 0, expected.len() + 10).expect("scan");
    assert_eq!(
        scanned, expected,
        "post-race scan disagrees with the live set"
    );
}

/// The get path is read-only on media: a burst of gets (hits and misses)
/// moves no persistent-memory write traffic at all.
#[test]
fn get_path_writes_no_media_bytes() {
    let dev = PmemDevice::optane(1 << 30);
    let db = ChameleonDb::create(Arc::clone(&dev), stress_cfg()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..30_000u64 {
        db.put(&mut ctx, k, &value_for(k, 1)).unwrap();
    }
    db.sync(&mut ctx).unwrap();
    let before = dev.stats().snapshot().media_bytes_written;
    let mut out = Vec::new();
    for k in 0..10_000u64 {
        db.get(&mut ctx, k, &mut out).unwrap();
        db.get(&mut ctx, k + 10_000_000, &mut out).unwrap(); // miss
    }
    let after = dev.stats().snapshot().media_bytes_written;
    assert_eq!(after, before, "gets must not write to media");
}

/// Regression for the publish/commit window: a crash right after a
/// structural transition published a new view — but before any further
/// manifest commit — must recover every synced key. Views are DRAM-only;
/// publication introduces no durability behavior of its own.
#[test]
fn crash_between_view_publish_and_next_commit_recovers() {
    let dev = PmemDevice::optane(1 << 30);
    let mut cfg = stress_cfg();
    // Lock-step maintenance: the test steers by watching the flush
    // counter between individual puts, which needs each put's enqueued
    // flush to have completed by the time the put returns.
    cfg.bg.synchronous = true;
    let db = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();

    // Put one key at a time until a flush commits (and republishes).
    let mut k = 0u64;
    while db.metrics().flushes == 0 {
        db.put(&mut ctx, k, &value_for(k, 1)).unwrap();
        k += 1;
        assert!(k < 100_000, "flush never triggered");
    }
    let publishes_at_flush = db.metrics().view_publishes;
    assert!(publishes_at_flush > 0);

    // We are now inside the window: the flush published a fresh view, and
    // these puts land in the new MemTable with no table commit behind
    // them. Sync the log and crash before any further transition.
    let commits_before = db.metrics().flushes
        + db.metrics().mid_compactions
        + db.metrics().last_compactions
        + db.metrics().abi_dumps;
    for extra in 0..8u64 {
        db.put(
            &mut ctx,
            1_000_000 + extra,
            &value_for(1_000_000 + extra, 1),
        )
        .unwrap();
    }
    let commits_after = db.metrics().flushes
        + db.metrics().mid_compactions
        + db.metrics().last_compactions
        + db.metrics().abi_dumps;
    assert_eq!(commits_before, commits_after, "window test needs no commit");
    db.sync(&mut ctx).unwrap();
    drop(db);
    dev.crash();

    let db = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    for key in 0..k {
        assert!(db.get(&mut ctx, key, &mut out).unwrap(), "key {key} lost");
        assert_eq!(decode(&out), (key, 1));
    }
    for extra in 0..8u64 {
        let key = 1_000_000 + extra;
        assert!(
            db.get(&mut ctx, key, &mut out).unwrap(),
            "window key {key} lost"
        );
        assert_eq!(decode(&out), (key, 1));
    }
}
