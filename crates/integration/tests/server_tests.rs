//! End-to-end tests of the kvserver service layer over real TCP
//! loopback: protocol round-trips, group-commit durability under an
//! injected device crash, ack-withholding until the batch fence, STATS
//! export, backpressure, and graceful shutdown.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use chameleon_obs::{ObsConfig, ServerObs};
use chameleondb::{BatchOp, ChameleonConfig, ChameleonDb};
use kvapi::KvStore;
use kvclient::{Client, ModeArg, RetryPolicy, StatsFormat, WriteOutcome};
use kvserver::{KvServer, ServerConfig};
use pmem_sim::{CrashPoint, PmemDevice, ThreadCtx};

fn test_store_config() -> ChameleonConfig {
    // Large MemTables so short tests trigger no flush/compaction: the
    // crash tests depend on the log being the only post-crash writer.
    ChameleonConfig {
        memtable_slots: 4096,
        obs: ObsConfig::on(),
        ..ChameleonConfig::tiny()
    }
}

fn start_server(
    dev: &Arc<PmemDevice>,
    store: &Arc<ChameleonDb>,
    cfg: ServerConfig,
) -> (KvServer, std::net::SocketAddr) {
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(dev),
        Arc::clone(store),
        Arc::new(ServerObs::new()),
        cfg,
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

fn value_for(key: u64) -> Vec<u8> {
    format!("value-{key:016x}").into_bytes()
}

#[test]
fn wire_round_trip_put_get_delete_sync_mode() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(&dev, &store, ServerConfig::default());

    let mut c = Client::connect(addr).unwrap();
    for key in 0..64u64 {
        assert_eq!(
            c.put(key, &value_for(key), key % 2 == 0).unwrap(),
            WriteOutcome::Done { existed: true }
        );
    }
    c.sync().unwrap();
    for key in 0..64u64 {
        assert_eq!(c.get(key).unwrap().as_deref(), Some(&value_for(key)[..]));
    }
    assert_eq!(c.get(1 << 40).unwrap(), None);
    assert_eq!(c.delete(7).unwrap(), WriteOutcome::Done { existed: true });
    assert_eq!(c.delete(7).unwrap(), WriteOutcome::Done { existed: false });
    assert_eq!(c.get(7).unwrap(), None);

    assert!(!c.mode(ModeArg::Query).unwrap());
    assert!(c.mode(ModeArg::WriteIntensive).unwrap());
    assert!(!c.mode(ModeArg::Normal).unwrap());

    server.shutdown().unwrap();
}

#[test]
fn pipelined_requests_on_one_connection_all_complete() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(&dev, &store, ServerConfig::default());

    let mut c = Client::connect(addr).unwrap();
    let ids: Vec<u64> = (0..256u64)
        .map(|key| c.send_put(key, &value_for(key), true).unwrap())
        .collect();
    for id in ids {
        match c.recv_for(id).unwrap() {
            kvclient::Response::Ok { .. } | kvclient::Response::Retry { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    server.shutdown().unwrap();
}

/// Satellite: N concurrent clients issue durable puts; after an
/// arbitrary ack the device crashes. Every write acked before the crash
/// snapshot must survive recovery.
#[test]
fn every_acked_durable_write_survives_crash() {
    let dev = PmemDevice::optane(256 << 20);
    let cfg = test_store_config();
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            lanes: 2,
            max_batch: 16,
            max_hold: Duration::from_micros(500),
            ..ServerConfig::default()
        },
    );

    // Keyed by client id so writers never collide.
    let acked: Arc<Mutex<HashMap<u64, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..8u64)
        .map(|cid| {
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut n = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let key = (cid << 32) | n;
                    let val = value_for(key);
                    match c.put(key, &val, true) {
                        Ok(WriteOutcome::Done { .. }) => {
                            // The ack is in hand; the crash snapshot
                            // below must include this key.
                            acked.lock().unwrap().insert(key, val);
                            n += 1;
                        }
                        Ok(WriteOutcome::Retry) => thread::yield_now(),
                        // Socket torn down by the crash/abort below.
                        Err(_) => break,
                    }
                }
            })
        })
        .collect();

    // Let traffic build, then crash while holding the ack map: anything
    // recorded is acked, hence fenced, hence must survive.
    thread::sleep(Duration::from_millis(300));
    let survivors: HashMap<u64, Vec<u8>> = {
        let guard = acked.lock().unwrap();
        dev.crash();
        guard.clone()
    };
    stop.store(true, Ordering::SeqCst);
    server.abort();
    for h in clients {
        h.join().unwrap();
    }
    assert!(
        survivors.len() >= 32,
        "want meaningful traffic before the crash, got {} acks",
        survivors.len()
    );

    drop(store);
    let mut ctx = ThreadCtx::with_default_cost();
    let recovered = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    for (key, val) in &survivors {
        assert!(
            recovered.get(&mut ctx, *key, &mut out).unwrap(),
            "acked key {key:#x} lost by crash"
        );
        assert_eq!(&out, val, "acked key {key:#x} has wrong value");
    }
}

/// Satellite regression: a batch's acks are withheld until its fence.
/// Wire-level half: with a held-open batch, acks must not arrive before
/// the batch fills (or the hold expires).
#[test]
fn durable_acks_wait_for_the_batch_fence() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            lanes: 1,
            max_batch: 4,
            max_hold: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );

    let fences_before = dev.fence_count();
    let mut c = Client::connect(addr).unwrap();
    let ids: Vec<u64> = (0..3u64)
        .map(|k| c.send_put(k, b"held", true).unwrap())
        .collect();
    c.flush().unwrap();
    // The batch is 3/4 full and the hold is 5s: no ack may arrive yet.
    c.set_read_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    match c.recv_for(ids[0]) {
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "expected timeout, got {e:?}"
        ),
        Ok(r) => panic!("ack released before the batch fence: {r:?}"),
    }
    // The fourth put fills the batch; every ack is released by one fence.
    let last = c.send_put(3, b"held", true).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    for id in ids.into_iter().chain([last]) {
        assert!(matches!(
            c.recv_for(id).unwrap(),
            kvclient::Response::Ok { .. }
        ));
    }
    let commit_fences = dev.fence_count() - fences_before;
    assert_eq!(
        commit_fences, 1,
        "a four-op batch must commit under exactly one fence"
    );
    server.shutdown().unwrap();
}

/// In-process half of the regression: a crash injected at the commit
/// fence unwinds `apply_batch` before it returns, so the server's
/// post-return ack path is structurally unreachable, and recovery sees a
/// consistent prefix.
#[test]
fn crash_at_commit_fence_withholds_acks_and_recovers_prefix() {
    let dev = PmemDevice::optane(256 << 20);
    let cfg = test_store_config();
    let store = ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap();
    let mut ctx = ThreadCtx::with_default_cost();

    // A durably committed prefix the crash must not touch.
    let prefix: Vec<BatchOp> = (0..8u64)
        .map(|k| BatchOp::Put {
            key: k,
            value: value_for(k),
        })
        .collect();
    store.apply_batch(&mut ctx, &prefix).unwrap();

    // Crash at the very next fence: the doomed batch's tail fence.
    dev.arm_crash_at_fence(dev.fence_count() + 1);
    let doomed: Vec<BatchOp> = (100..108u64)
        .map(|k| BatchOp::Put {
            key: k,
            value: value_for(k),
        })
        .collect();
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        store.apply_batch(&mut ctx, &doomed).unwrap();
    }));
    let crash = unwound.expect_err("apply_batch must unwind at the armed fence");
    assert!(
        crash.downcast_ref::<CrashPoint>().is_some(),
        "unwind payload must be the injected CrashPoint"
    );
    dev.disarm_crash();

    drop(store);
    let recovered = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    for k in 0..8u64 {
        assert!(
            recovered.get(&mut ctx, k, &mut out).unwrap(),
            "fenced prefix key {k} lost"
        );
        assert_eq!(out, value_for(k));
    }
    // The armed crash fires after its fence completes, so the doomed
    // batch is durable-but-unacked — the legal recovery window (a store
    // may keep more than it acked, never less, and never garbage).
    for k in 100..108u64 {
        if recovered.get(&mut ctx, k, &mut out).unwrap() {
            assert_eq!(out, value_for(k), "doomed key {k} recovered torn");
        }
    }
}

/// Satellite: PR-3's degraded-read counters and the new server batch
/// stats are visible through the STATS command in both formats.
#[test]
fn stats_command_exports_store_and_server_sections() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(&dev, &store, ServerConfig::default());

    let mut c = Client::connect(addr).unwrap();
    for key in 0..32u64 {
        c.put(key, &value_for(key), true).unwrap();
        assert!(c.get(key).unwrap().is_some());
    }

    let prom = c.stats(StatsFormat::Prometheus).unwrap();
    for metric in [
        "chameleon_store_degraded_gets",
        "chameleon_store_view_publishes",
        "chameleon_server_batches",
        "chameleon_server_acks",
        "chameleon_server_commit_fences",
        "chameleon_server_batch_size_p99",
        "chameleon_server_queue_depth_p99",
        "chameleon_server_acks_per_fence_milli",
    ] {
        assert!(prom.contains(metric), "prometheus text missing {metric}");
    }

    let json = c.stats(StatsFormat::Json).unwrap();
    for key in ["\"server\"", "\"batches\"", "\"degraded_gets\""] {
        assert!(json.contains(key), "json snapshot missing {key}");
    }
    // The 32 durable puts above were all acked, hence all batched.
    let batched: u64 = prom
        .lines()
        .find(|l| l.starts_with("chameleon_server_batched_ops "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("batched_ops gauge present");
    assert!(batched >= 32, "expected >= 32 batched ops, got {batched}");

    server.shutdown().unwrap();
}

/// A full lane answers RETRY instead of blocking or dropping, and every
/// accepted write is still acked exactly once.
#[test]
fn full_lane_backpressure_yields_retry_not_loss() {
    let dev = PmemDevice::optane(256 << 20);
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), test_store_config()).unwrap());
    let (server, addr) = start_server(
        &dev,
        &store,
        ServerConfig {
            lanes: 1,
            queue_cap: 1,
            max_batch: 1,
            max_hold: Duration::ZERO,
            ..ServerConfig::default()
        },
    );

    let mut c = Client::connect(addr).unwrap();
    let big = vec![0xA5u8; 16 << 10];
    let total = 300u64;
    let ids: Vec<u64> = (0..total)
        .map(|k| c.send_put(k, &big, true).unwrap())
        .collect();
    let (mut ok, mut retry) = (0u64, 0u64);
    let mut accepted = Vec::new();
    for (k, id) in ids.into_iter().enumerate() {
        match c.recv_for(id).unwrap() {
            kvclient::Response::Ok { .. } => {
                ok += 1;
                accepted.push(k as u64);
            }
            kvclient::Response::Retry { .. } => retry += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok + retry, total);
    assert!(ok > 0, "some writes must get through");
    // Every accepted (acked) write is durable and readable.
    for k in accepted {
        assert!(c.get(k).unwrap().is_some(), "acked key {k} unreadable");
    }
    server.shutdown().unwrap();
}

/// Graceful shutdown drains accepted work and checkpoints: even
/// non-durable (early-acked) writes survive a clean restart.
#[test]
fn graceful_shutdown_drains_queues_and_checkpoints() {
    let dev = PmemDevice::optane(256 << 20);
    let cfg = test_store_config();
    let store = Arc::new(ChameleonDb::create(Arc::clone(&dev), cfg.clone()).unwrap());
    let (server, addr) = start_server(&dev, &store, ServerConfig::default());

    let mut c = Client::connect(addr).unwrap();
    for key in 0..128u64 {
        // Non-durable: acked at enqueue, still in a lane queue or an
        // open batch when shutdown starts.
        assert!(matches!(
            c.put(key, &value_for(key), false).unwrap(),
            WriteOutcome::Done { .. }
        ));
    }
    drop(c);
    server.shutdown().unwrap();
    drop(store);

    // A clean shutdown implies no work lost: recover and read it all.
    let mut ctx = ThreadCtx::with_default_cost();
    let recovered = ChameleonDb::recover(Arc::clone(&dev), cfg, &mut ctx).unwrap();
    let mut out = Vec::new();
    for key in 0..128u64 {
        assert!(
            recovered.get(&mut ctx, key, &mut out).unwrap(),
            "drained write {key} lost by graceful shutdown"
        );
        assert_eq!(out, value_for(key));
    }
}

/// A commit lane that never drains must not hang the client forever:
/// `put_retrying` is bounded and surfaces `TimedOut` once its attempt
/// budget is spent. The "server" here is a bare socket that answers
/// RETRY to the first seven puts and only then accepts, so the test
/// also pins the retry count the client reports on eventual success.
#[test]
fn put_retrying_times_out_against_a_wedged_lane() {
    use kvserver::proto::{
        decode_request, encode_response, read_frame, write_frame, Request, Response,
    };

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let wedged = thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        let mut puts_seen = 0u64;
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let req_id = match decode_request(&payload).unwrap() {
                Request::Put { req_id, .. } => req_id,
                other => panic!("wedged lane got non-put request {other:?}"),
            };
            puts_seen += 1;
            let resp = if puts_seen <= 7 {
                Response::Retry { req_id }
            } else {
                Response::Ok { req_id }
            };
            write_frame(&mut writer, &encode_response(&resp)).unwrap();
            std::io::Write::flush(&mut writer).unwrap();
        }
        puts_seen
    });

    let mut c = Client::connect(addr).unwrap();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(1),
    };

    // Puts 1..=5: all RETRY — the bounded policy must give up.
    let err = c
        .put_retrying_with(9, b"wedged", true, &policy)
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::TimedOut);

    // Puts 6..=8: RETRY, RETRY, OK — succeeds and reports two retries.
    let retries = c.put_retrying_with(9, b"wedged", true, &policy).unwrap();
    assert_eq!(retries, 2);

    drop(c);
    assert_eq!(wedged.join().unwrap(), 8, "client sent an unexpected put");
}
