//! The baseline KV stores of the ChameleonDB evaluation (§3.2, §3.7).
//!
//! All stores share the value log and device model and differ only in their
//! index design — exactly the controlled comparison the paper runs:
//!
//! * [`DramHash`] — a growable robin-hood hash index entirely in DRAM
//!   (fast, but large footprint and slow restart; §1.3).
//! * [`PmemHash`] — CCEH, a persistent extendible hash table updated in
//!   place on Pmem (small writes, big write amplification; §1.1).
//! * [`PmemLsm`] — a multi-shard hash-keyed LSM in Pmem, in three
//!   flavours: no filters (`NF`), per-table Bloom filters (`F`), and upper
//!   levels pinned in DRAM (`PinK`).
//! * [`NoveLsm`] / [`MatrixKv`] — cost-structure models of the two
//!   Pmem-aware LSM designs compared in §3.7 (in-Pmem mutable MemTable;
//!   in-Pmem multi-sublevel L0 with RowTable metadata).

mod cceh;
mod common;
mod dram_hash;
mod matrixkv;
mod novelsm;
mod pmem_lsm;

pub use cceh::{CcehConfig, PmemHash};
pub use dram_hash::{DramHash, DramHashConfig};
pub use matrixkv::{MatrixKv, MatrixKvConfig};
pub use novelsm::{NoveLsm, NoveLsmConfig};
pub use pmem_lsm::{LsmVariant, PmemLsm, PmemLsmConfig};
