//! Pmem-LSM: a legacy multi-level LSM KV store on Pmem (§3.2).
//!
//! Hash-keyed LSM with per-shard levels of fixed-size hash tables, exactly
//! ChameleonDB's substrate but **without** the ABI: a get must walk the
//! levels one by one. Three variants reproduce the paper's comparison:
//!
//! * [`LsmVariant::NoFilter`] — every level check is a Pmem probe.
//! * [`LsmVariant::Filter`] — an in-DRAM Bloom filter per table avoids
//!   most useless Pmem probes, at the cost of per-key construction work on
//!   every flush/compaction (the paper's put-throughput killer) and a
//!   per-level check cost on every get (Fig. 2's latency overhead).
//! * [`LsmVariant::PinK`] — upper-level tables are mirrored in DRAM
//!   (PinK-style); gets and compactions read the mirrors, but the
//!   *multi-level search structure* remains, which is why it still loses
//!   to ChameleonDB's O(1) ABI (§3.3).
//!
//! Compactions are classic level-by-level (Fig. 5a). Tables persist through
//! the same manifest machinery as ChameleonDB, so restart is fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chameleondb::{Manifest, ManifestRecord, Superblock};
use kvapi::{hash64, CrashRecover, KvError, KvStore, Result};
use kvlog::{EntryMeta, LogConfig, StorageLog, ENTRY_HEADER};
use kvtables::{BloomFilter, DramTable, FixedHashTable, Slot, TableBuilder};
use parking_lot::Mutex;
use pmem_sim::{PmemDevice, ThreadCtx};

use crate::common::WriterPool;

/// Which Pmem-LSM flavour to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsmVariant {
    /// No filters: probe Pmem at every level (Pmem-LSM-NF).
    NoFilter,
    /// Per-table Bloom filters in DRAM (Pmem-LSM-F).
    Filter,
    /// Upper levels pinned in DRAM (Pmem-LSM-PinK); no filters, like the
    /// paper's configuration.
    PinK,
}

/// Configuration of [`PmemLsm`].
#[derive(Debug, Clone)]
pub struct PmemLsmConfig {
    /// Variant to run.
    pub variant: LsmVariant,
    /// Shard count (power of two).
    pub shards: usize,
    /// MemTable slots per shard.
    pub memtable_slots: usize,
    /// Levels including the last.
    pub levels: usize,
    /// Between-level ratio.
    pub ratio: usize,
    /// Flush threshold (fixed — the randomized thresholds are a
    /// ChameleonDB refinement).
    pub load_factor: f64,
    /// Bloom bits per key (`Filter` variant).
    pub bits_per_key: usize,
    /// Per-thread log writers.
    pub max_threads: usize,
    /// Storage-log configuration.
    pub log: LogConfig,
    /// Manifest region size.
    pub manifest_bytes: u64,
}

impl PmemLsmConfig {
    /// Paper-comparable geometry with a custom shard count.
    pub fn with_shards(variant: LsmVariant, shards: usize) -> Self {
        Self {
            variant,
            shards,
            memtable_slots: 512,
            levels: 4,
            ratio: 4,
            load_factor: 0.75,
            bits_per_key: 10,
            max_threads: 64,
            log: LogConfig::default(),
            manifest_bytes: 4 << 20,
        }
    }

    /// Small test geometry.
    pub fn tiny(variant: LsmVariant) -> Self {
        Self {
            memtable_slots: 64,
            log: LogConfig {
                capacity: 64 << 20,
                ..LogConfig::default()
            },
            manifest_bytes: 1 << 20,
            ..Self::with_shards(variant, 8)
        }
    }
}

/// A persisted table plus its variant-specific DRAM companions.
struct LsmTable {
    table: FixedHashTable,
    /// Bloom filter (`Filter` variant only).
    filter: Option<BloomFilter>,
    /// DRAM mirror of the slot contents (`PinK` variant, upper levels).
    mirror: Option<DramTable>,
}

impl LsmTable {
    fn dram_bytes(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.dram_bytes())
            + self.mirror.as_ref().map_or(0, |m| m.dram_bytes())
    }
}

struct LsmShard {
    id: u32,
    memtable: DramTable,
    /// Upper levels, tables oldest-first within a level.
    uppers: Vec<Vec<LsmTable>>,
    last: Option<LsmTable>,
    table_seq: u64,
    checkpoint_seq: u64,
}

/// Per-get search-cost counters (drive the Fig. 2 breakdown).
#[derive(Debug, Default)]
pub struct LsmMetrics {
    /// Bloom filters consulted.
    pub filters_checked: AtomicU64,
    /// Pmem table probes performed.
    pub pmem_probes: AtomicU64,
    /// DRAM mirror probes performed (PinK).
    pub dram_probes: AtomicU64,
    /// Gets served.
    pub gets: AtomicU64,
    /// MemTable flushes.
    pub flushes: AtomicU64,
    /// Compactions run.
    pub compactions: AtomicU64,
}

/// The Pmem-LSM baseline store.
pub struct PmemLsm {
    dev: Arc<PmemDevice>,
    cfg: PmemLsmConfig,
    log: Arc<StorageLog>,
    writers: WriterPool,
    shards: Vec<Mutex<LsmShard>>,
    manifest: Manifest,
    registry: Mutex<std::collections::HashMap<u64, ManifestRecord>>,
    metrics: LsmMetrics,
    shard_shift: u32,
}

impl PmemLsm {
    /// Creates a fresh store (first allocator client of `dev`).
    pub fn create(dev: Arc<PmemDevice>, cfg: PmemLsmConfig) -> Result<Self> {
        if !cfg.shards.is_power_of_two() || cfg.levels < 2 || cfg.ratio < 2 {
            return Err(KvError::Corrupt("invalid pmem-lsm config"));
        }
        let mut ctx = ThreadCtx::with_default_cost();
        let sb_off = dev.alloc(256)?;
        let manifest_regions = [
            dev.alloc_region(cfg.manifest_bytes)?,
            dev.alloc_region(cfg.manifest_bytes)?,
        ];
        let log = StorageLog::create(Arc::clone(&dev), cfg.log.clone())?;
        let sb = Superblock {
            epoch: 0,
            active: 0,
            log_region: log.region(),
            manifest: manifest_regions,
            blob: lsm_blob(&cfg),
        };
        sb.write(&dev, &mut ctx, sb_off);
        let manifest = Manifest::create(Arc::clone(&dev), sb_off, manifest_regions);
        let shards = (0..cfg.shards as u32)
            .map(|i| {
                Mutex::new(LsmShard {
                    id: i,
                    memtable: DramTable::new_resident(cfg.memtable_slots),
                    uppers: (0..cfg.levels - 1).map(|_| Vec::new()).collect(),
                    last: None,
                    table_seq: 0,
                    checkpoint_seq: 0,
                })
            })
            .collect();
        Ok(Self {
            shard_shift: 64 - cfg.shards.trailing_zeros(),
            writers: WriterPool::new(&log, cfg.max_threads),
            shards,
            manifest,
            registry: Mutex::new(std::collections::HashMap::new()),
            metrics: LsmMetrics::default(),
            dev,
            cfg,
            log,
        })
    }

    /// Reopens the store after a crash: manifest replay, filter/mirror
    /// rebuild (variant-dependent), one log scan, MemTable reconstruction.
    pub fn recover(dev: Arc<PmemDevice>, cfg: PmemLsmConfig, ctx: &mut ThreadCtx) -> Result<Self> {
        let sb_off = 256u64;
        let sb = Superblock::read(&dev, ctx, sb_off)?;
        if sb.blob != lsm_blob(&cfg) {
            return Err(KvError::Corrupt("pmem-lsm superblock config mismatch"));
        }
        let (manifest, live) = Manifest::open(Arc::clone(&dev), ctx, sb_off, &sb)?;
        let mut shards: Vec<LsmShard> = (0..cfg.shards as u32)
            .map(|i| LsmShard {
                id: i,
                memtable: DramTable::new_resident(cfg.memtable_slots),
                uppers: (0..cfg.levels - 1).map(|_| Vec::new()).collect(),
                last: None,
                table_seq: 0,
                checkpoint_seq: 0,
            })
            .collect();
        let mut registry = std::collections::HashMap::new();
        let mut high_water = sb
            .log_region
            .end()
            .max(sb.manifest[0].end())
            .max(sb.manifest[1].end())
            .max(sb_off + 256);
        let mut live_bytes = sb.log_region.len + sb.manifest[0].len + sb.manifest[1].len + 256;
        let last_level = (cfg.levels - 1) as u8;
        for rec in live {
            let ManifestRecord::Add {
                shard,
                level,
                table_seq,
                region,
            } = rec
            else {
                return Err(KvError::Corrupt("live set contains delete"));
            };
            let table = FixedHashTable::open(&dev, ctx, region)?;
            high_water = high_water.max(region.end());
            live_bytes += region.len;
            registry.insert(region.off, rec);
            let s = &mut shards[shard as usize];
            s.table_seq = s.table_seq.max(table_seq);
            s.checkpoint_seq = s.checkpoint_seq.max(table.header().max_log_seq);
            let is_last = level == last_level;
            let wrapped = Self::decorate(&dev, ctx, &cfg, table, is_last);
            if is_last {
                s.last = Some(wrapped);
            } else {
                s.uppers[level as usize].push(wrapped);
            }
        }
        for s in &mut shards {
            for level in &mut s.uppers {
                level.sort_by_key(|t| t.table.header().table_seq);
            }
        }
        dev.reset_allocator(high_water, live_bytes);
        let shard_shift = 64 - cfg.shards.trailing_zeros();
        let nshards = cfg.shards;
        let shard_of = move |hash: u64| {
            if nshards == 1 {
                0usize
            } else {
                (hash >> shard_shift) as usize
            }
        };
        let mut pending: std::collections::HashMap<u64, EntryMeta> =
            std::collections::HashMap::new();
        let log = StorageLog::reopen_with(
            Arc::clone(&dev),
            sb.log_region,
            cfg.log.clone(),
            ctx,
            |meta| {
                let hash = hash64(meta.key);
                if meta.seq > shards[shard_of(hash)].checkpoint_seq {
                    let e = pending.entry(hash).or_insert(meta);
                    if meta.seq >= e.seq {
                        *e = meta;
                    }
                }
            },
        )?;
        let store = Self {
            shard_shift,
            writers: WriterPool::new(&log, cfg.max_threads),
            shards: shards.into_iter().map(Mutex::new).collect(),
            manifest,
            registry: Mutex::new(registry),
            metrics: LsmMetrics::default(),
            dev,
            cfg,
            log,
        };
        // Ascending sequence order: see ChameleonDb::recover — a mid-replay
        // flush must never advance the checkpoint past entries that are
        // still only in the volatile MemTable.
        let mut ordered: Vec<(u64, EntryMeta)> = pending.into_iter().collect();
        ordered.sort_by_key(|(_, m)| m.seq);
        for (hash, meta) in ordered {
            let slot = if meta.tombstone {
                Slot::tombstone(hash, meta.loc())
            } else {
                Slot::new(hash, meta.loc())
            };
            let mut shard = store.shards[shard_of(hash)].lock();
            store.insert_slot(ctx, &mut shard, slot, meta.seq)?;
        }
        Ok(store)
    }

    /// Rebuilds the variant-specific DRAM companions for a recovered table.
    fn decorate(
        dev: &Arc<PmemDevice>,
        ctx: &mut ThreadCtx,
        cfg: &PmemLsmConfig,
        table: FixedHashTable,
        is_last: bool,
    ) -> LsmTable {
        match cfg.variant {
            LsmVariant::NoFilter => LsmTable {
                table,
                filter: None,
                mirror: None,
            },
            LsmVariant::Filter => {
                let slots = table.iter_entries(dev, ctx);
                let mut f = BloomFilter::new(slots.len().max(1), cfg.bits_per_key);
                for s in &slots {
                    f.insert(ctx, s.hash);
                }
                LsmTable {
                    table,
                    filter: Some(f),
                    mirror: None,
                }
            }
            LsmVariant::PinK => {
                if is_last {
                    LsmTable {
                        table,
                        filter: None,
                        mirror: None,
                    }
                } else {
                    let slots = table.iter_entries(dev, ctx);
                    let mut m = DramTable::new(table.header().num_slots as usize);
                    for s in &slots {
                        let _ = m.insert_bulk(ctx, *s);
                    }
                    LsmTable {
                        table,
                        filter: None,
                        mirror: Some(m),
                    }
                }
            }
        }
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    /// Search-cost counters.
    pub fn lsm_metrics(&self) -> &LsmMetrics {
        &self.metrics
    }

    /// Depth (number of tables consulted after the MemTable) at which `key`
    /// is found, or `None`. Used by the Fig. 2 harness to bucket keys by
    /// resident level. Charges no simulated time.
    pub fn find_depth(&self, key: u64) -> Option<usize> {
        let mut scratch = ThreadCtx::with_default_cost();
        let hash = hash64(key);
        let shard = self.shards[self.shard_of(hash)].lock();
        if shard.memtable.get(&mut scratch, hash).is_some() {
            return Some(0);
        }
        let mut depth = 1;
        let mut tables: Vec<&LsmTable> = shard.uppers.iter().flatten().collect();
        tables.sort_by_key(|t| std::cmp::Reverse(t.table.header().table_seq));
        for t in tables {
            if t.table.get(&self.dev, &mut scratch, hash).is_some() {
                return Some(depth);
            }
            depth += 1;
        }
        if let Some(t) = &shard.last {
            if t.table.get(&self.dev, &mut scratch, hash).is_some() {
                return Some(depth);
            }
        }
        None
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (hash >> self.shard_shift) as usize
        }
    }

    fn commit(&self, ctx: &mut ThreadCtx, records: &[ManifestRecord]) -> Result<()> {
        let snapshot: Vec<ManifestRecord> = {
            let mut reg = self.registry.lock();
            for rec in records {
                match *rec {
                    ManifestRecord::Add { region, .. } => {
                        reg.insert(region.off, *rec);
                    }
                    ManifestRecord::Del { off } => {
                        reg.remove(&off);
                    }
                    // GC audit records belong to ChameleonDB's value-log
                    // collector; this baseline never emits or folds them.
                    ManifestRecord::Gc { .. } => {}
                }
            }
            reg.values().copied().collect()
        };
        self.manifest.append(ctx, records, move || snapshot)
    }

    fn insert_slot(
        &self,
        ctx: &mut ThreadCtx,
        shard: &mut LsmShard,
        slot: Slot,
        seq: u64,
    ) -> Result<Option<u64>> {
        let old = shard.memtable.insert(ctx, slot)?;
        shard.memtable.note_seq(seq);
        if shard.memtable.is_full(self.cfg.load_factor) {
            self.flush_memtable(ctx, shard)?;
            self.cascade_compactions(ctx, shard)?;
        }
        Ok(old)
    }

    /// Builds an [`LsmTable`] (and its filter/mirror) from staged slots.
    #[allow(clippy::too_many_arguments)]
    fn build_table(
        &self,
        ctx: &mut ThreadCtx,
        shard: &mut LsmShard,
        slots_newest_first: &[Slot],
        level: u32,
        capacity: usize,
        max_seq: u64,
        drop_tombstones: bool,
    ) -> Result<LsmTable> {
        let mut b =
            TableBuilder::sized_for(capacity.max(slots_newest_first.len()), self.cfg.load_factor);
        b.note_seq(max_seq);
        let mut kept: Vec<Slot> = Vec::with_capacity(slots_newest_first.len());
        for &slot in slots_newest_first {
            if b.insert(ctx, slot, drop_tombstones)? {
                kept.push(slot);
            }
        }
        let seq = {
            shard.table_seq += 1;
            shard.table_seq
        };
        let table = b.build(&self.dev, ctx, shard.id, level, seq)?;
        let filter = if self.cfg.variant == LsmVariant::Filter {
            let mut f = BloomFilter::new(kept.len().max(1), self.cfg.bits_per_key);
            for s in &kept {
                f.insert(ctx, s.hash);
            }
            Some(f)
        } else {
            None
        };
        let is_last = level as usize == self.cfg.levels - 1;
        let mirror = if self.cfg.variant == LsmVariant::PinK && !is_last {
            let mut m = DramTable::new(table.header().num_slots as usize);
            for s in &kept {
                m.insert_bulk(ctx, *s)?;
            }
            Some(m)
        } else {
            None
        };
        Ok(LsmTable {
            table,
            filter,
            mirror,
        })
    }

    fn flush_memtable(&self, ctx: &mut ThreadCtx, shard: &mut LsmShard) -> Result<()> {
        if shard.memtable.is_empty() {
            return Ok(());
        }
        let slots: Vec<Slot> = shard.memtable.iter().collect();
        let max_seq = shard.memtable.max_seq();
        let t = self.build_table(
            ctx,
            shard,
            &slots,
            0,
            self.cfg.memtable_slots,
            max_seq,
            false,
        )?;
        self.commit(
            ctx,
            &[ManifestRecord::Add {
                shard: shard.id,
                level: 0,
                table_seq: t.table.header().table_seq,
                region: t.table.region(),
            }],
        )?;
        shard.checkpoint_seq = shard.checkpoint_seq.max(max_seq);
        shard.uppers[0].push(t);
        shard.memtable.clear();
        self.metrics.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads a table's slots for compaction: from the DRAM mirror when
    /// pinned, otherwise sequentially from Pmem.
    fn table_slots(&self, ctx: &mut ThreadCtx, t: &LsmTable) -> Vec<Slot> {
        match &t.mirror {
            Some(m) => {
                ctx.charge(ctx.cost.dram_stream_ns(m.capacity() * 16));
                m.iter().collect()
            }
            None => t.table.iter_entries(&self.dev, ctx),
        }
    }

    fn cascade_compactions(&self, ctx: &mut ThreadCtx, shard: &mut LsmShard) -> Result<()> {
        loop {
            let mut acted = false;
            for j in 0..shard.uppers.len() {
                if shard.uppers[j].len() >= self.cfg.ratio {
                    if j + 1 < shard.uppers.len() {
                        self.compact_into(ctx, shard, j)?;
                    } else {
                        self.compact_last(ctx, shard)?;
                    }
                    acted = true;
                    break;
                }
            }
            if !acted {
                return Ok(());
            }
        }
    }

    fn compact_into(&self, ctx: &mut ThreadCtx, shard: &mut LsmShard, j: usize) -> Result<()> {
        let inputs = std::mem::take(&mut shard.uppers[j]);
        let mut ordered: Vec<&LsmTable> = inputs.iter().collect();
        ordered.sort_by_key(|t| std::cmp::Reverse(t.table.header().table_seq));
        let mut slots = Vec::new();
        let mut max_seq = 0;
        for t in ordered {
            max_seq = max_seq.max(t.table.header().max_log_seq);
            slots.extend(self.table_slots(ctx, t));
        }
        let capacity = self.cfg.memtable_slots * self.cfg.ratio.pow((j + 1) as u32);
        let out = self.build_table(ctx, shard, &slots, (j + 1) as u32, capacity, max_seq, false)?;
        let mut records = vec![ManifestRecord::Add {
            shard: shard.id,
            level: (j + 1) as u8,
            table_seq: out.table.header().table_seq,
            region: out.table.region(),
        }];
        records.extend(inputs.iter().map(|t| ManifestRecord::Del {
            off: t.table.region().off,
        }));
        self.commit(ctx, &records)?;
        for t in inputs {
            t.table.free(&self.dev);
        }
        shard.uppers[j + 1].push(out);
        self.metrics.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn compact_last(&self, ctx: &mut ThreadCtx, shard: &mut LsmShard) -> Result<()> {
        let j = shard.uppers.len() - 1;
        let inputs = std::mem::take(&mut shard.uppers[j]);
        let mut ordered: Vec<&LsmTable> = inputs.iter().collect();
        ordered.sort_by_key(|t| std::cmp::Reverse(t.table.header().table_seq));
        let mut slots = Vec::new();
        let mut max_seq = 0;
        for t in ordered {
            max_seq = max_seq.max(t.table.header().max_log_seq);
            slots.extend(self.table_slots(ctx, t));
        }
        if let Some(old) = &shard.last {
            max_seq = max_seq.max(old.table.header().max_log_seq);
            slots.extend(self.table_slots(ctx, old));
        }
        let last_level = (self.cfg.levels - 1) as u32;
        let out = self.build_table(ctx, shard, &slots, last_level, slots.len(), max_seq, true)?;
        let mut records = vec![ManifestRecord::Add {
            shard: shard.id,
            level: last_level as u8,
            table_seq: out.table.header().table_seq,
            region: out.table.region(),
        }];
        records.extend(inputs.iter().map(|t| ManifestRecord::Del {
            off: t.table.region().off,
        }));
        if let Some(old) = &shard.last {
            records.push(ManifestRecord::Del {
                off: old.table.region().off,
            });
        }
        self.commit(ctx, &records)?;
        for t in inputs {
            t.table.free(&self.dev);
        }
        if let Some(old) = shard.last.take() {
            old.table.free(&self.dev);
        }
        shard.checkpoint_seq = shard.checkpoint_seq.max(out.table.header().max_log_seq);
        shard.last = Some(out);
        self.metrics.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Probes one table according to the variant's rules.
    fn probe_table(&self, ctx: &mut ThreadCtx, t: &LsmTable, hash: u64) -> Option<Slot> {
        if let Some(f) = &t.filter {
            self.metrics.filters_checked.fetch_add(1, Ordering::Relaxed);
            if !f.contains(ctx, hash) {
                return None;
            }
        }
        if let Some(m) = &t.mirror {
            self.metrics.dram_probes.fetch_add(1, Ordering::Relaxed);
            return m.get(ctx, hash);
        }
        self.metrics.pmem_probes.fetch_add(1, Ordering::Relaxed);
        t.table.get(&self.dev, ctx, hash)
    }

    fn search(&self, ctx: &mut ThreadCtx, shard: &LsmShard, hash: u64) -> Option<Slot> {
        if let Some(s) = shard.memtable.get(ctx, hash) {
            return Some(s);
        }
        let mut tables: Vec<&LsmTable> = shard.uppers.iter().flatten().collect();
        tables.sort_by_key(|t| std::cmp::Reverse(t.table.header().table_seq));
        for t in tables {
            if let Some(s) = self.probe_table(ctx, t, hash) {
                return Some(s);
            }
        }
        if let Some(t) = &shard.last {
            if let Some(s) = self.probe_table(ctx, t, hash) {
                return Some(s);
            }
        }
        None
    }
}

fn lsm_blob(cfg: &PmemLsmConfig) -> [u8; 128] {
    let mut blob = [0u8; 128];
    blob[0..4].copy_from_slice(&(cfg.shards as u32).to_le_bytes());
    blob[4..8].copy_from_slice(&(cfg.memtable_slots as u32).to_le_bytes());
    blob[8] = cfg.levels as u8;
    blob[9] = cfg.ratio as u8;
    blob[10] = match cfg.variant {
        LsmVariant::NoFilter => 0,
        LsmVariant::Filter => 1,
        LsmVariant::PinK => 2,
    };
    blob[16..24].copy_from_slice(&cfg.log.capacity.to_le_bytes());
    blob[24..32].copy_from_slice(&cfg.manifest_bytes.to_le_bytes());
    blob
}

impl KvStore for PmemLsm {
    fn name(&self) -> &'static str {
        match self.cfg.variant {
            LsmVariant::NoFilter => "pmem-lsm-nf",
            LsmVariant::Filter => "pmem-lsm-f",
            LsmVariant::PinK => "pmem-lsm-pink",
        }
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let mut shard = self.shards[self.shard_of(hash)].lock();
        let meta = self.writers.append(ctx, key, value, false)?;
        if let Some(old) =
            self.insert_slot(ctx, &mut shard, Slot::new(hash, meta.loc()), meta.seq)?
        {
            let (_, hint) = kvlog::unpack_loc(old);
            self.log.note_dead((ENTRY_HEADER + hint) as u64);
        }
        Ok(())
    }

    fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        self.metrics.gets.fetch_add(1, Ordering::Relaxed);
        let hash = hash64(key);
        let found = {
            let shard = self.shards[self.shard_of(hash)].lock();
            self.search(ctx, &shard, hash)
        };
        match found {
            None => Ok(false),
            Some(s) if s.is_tombstone() => Ok(false),
            Some(s) => {
                let meta = self.log.read_entry(ctx, s.location(), out)?;
                if meta.key != key {
                    return Err(KvError::Corrupt("log entry key mismatch"));
                }
                Ok(true)
            }
        }
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let mut shard = self.shards[self.shard_of(hash)].lock();
        let existed = matches!(self.search(ctx, &shard, hash), Some(s) if !s.is_tombstone());
        let meta = self.writers.append(ctx, key, &[], true)?;
        self.insert_slot(ctx, &mut shard, Slot::tombstone(hash, meta.loc()), meta.seq)?;
        Ok(existed)
    }

    fn sync(&self, ctx: &mut ThreadCtx) -> Result<()> {
        self.writers.flush_all(ctx)
    }

    fn dram_footprint(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.memtable.dram_bytes()
                    + s.uppers
                        .iter()
                        .flatten()
                        .map(LsmTable::dram_bytes)
                        .sum::<u64>()
                    + s.last.as_ref().map_or(0, LsmTable::dram_bytes)
            })
            .sum()
    }

    fn approx_len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.memtable.len() as u64
                    + s.uppers
                        .iter()
                        .flatten()
                        .map(|t| t.table.num_entries())
                        .sum::<u64>()
                    + s.last.as_ref().map_or(0, |t| t.table.num_entries())
            })
            .sum()
    }
}

impl CrashRecover for PmemLsm {
    fn crash_and_recover(&mut self, ctx: &mut ThreadCtx) -> Result<()> {
        self.dev.crash();
        *self = PmemLsm::recover(Arc::clone(&self.dev), self.cfg.clone(), ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(variant: LsmVariant) -> (PmemLsm, ThreadCtx) {
        let dev = PmemDevice::optane(512 << 20);
        (
            PmemLsm::create(dev, PmemLsmConfig::tiny(variant)).unwrap(),
            ThreadCtx::with_default_cost(),
        )
    }

    fn roundtrip(variant: LsmVariant) {
        let (db, mut c) = store(variant);
        let n = 40_000u64;
        for k in 0..n {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        let mut out = Vec::new();
        for k in 0..n {
            assert!(db.get(&mut c, k, &mut out).unwrap(), "key {k} missing");
            assert_eq!(out, k.to_le_bytes());
        }
        assert!(!db.get(&mut c, n + 9, &mut out).unwrap());
        assert!(db.lsm_metrics().compactions.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn nf_roundtrip_through_compactions() {
        roundtrip(LsmVariant::NoFilter);
    }

    #[test]
    fn filter_roundtrip_through_compactions() {
        roundtrip(LsmVariant::Filter);
    }

    #[test]
    fn pink_roundtrip_through_compactions() {
        roundtrip(LsmVariant::PinK);
    }

    #[test]
    fn filters_cut_pmem_probes_for_misses() {
        let (nf, mut c1) = store(LsmVariant::NoFilter);
        let (f, mut c2) = store(LsmVariant::Filter);
        for k in 0..20_000u64 {
            nf.put(&mut c1, k, b"v").unwrap();
            f.put(&mut c2, k, b"v").unwrap();
        }
        let mut out = Vec::new();
        for k in 100_000..101_000u64 {
            nf.get(&mut c1, k, &mut out).unwrap();
            f.get(&mut c2, k, &mut out).unwrap();
        }
        let nf_probes = nf.lsm_metrics().pmem_probes.load(Ordering::Relaxed);
        let f_probes = f.lsm_metrics().pmem_probes.load(Ordering::Relaxed);
        assert!(
            f_probes < nf_probes / 2,
            "filters should cut probes: {f_probes} vs {nf_probes}"
        );
    }

    #[test]
    fn pink_serves_upper_levels_from_dram() {
        let (db, mut c) = store(LsmVariant::PinK);
        for k in 0..10_000u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        let mut out = Vec::new();
        for k in 0..10_000u64 {
            db.get(&mut c, k, &mut out).unwrap();
        }
        assert!(db.lsm_metrics().dram_probes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn delete_then_miss() {
        let (db, mut c) = store(LsmVariant::NoFilter);
        for k in 0..2000u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        assert!(db.delete(&mut c, 100).unwrap());
        let mut out = Vec::new();
        assert!(!db.get(&mut c, 100, &mut out).unwrap());
    }

    #[test]
    fn recovery_roundtrip_all_variants() {
        for variant in [LsmVariant::NoFilter, LsmVariant::Filter, LsmVariant::PinK] {
            let dev = PmemDevice::optane(512 << 20);
            let cfg = PmemLsmConfig::tiny(variant);
            let db = PmemLsm::create(Arc::clone(&dev), cfg.clone()).unwrap();
            let mut c = ThreadCtx::with_default_cost();
            for k in 0..15_000u64 {
                db.put(&mut c, k, &k.to_le_bytes()).unwrap();
            }
            db.sync(&mut c).unwrap();
            drop(db);
            dev.crash();
            let db2 = PmemLsm::recover(Arc::clone(&dev), cfg, &mut c).unwrap();
            let mut out = Vec::new();
            for k in 0..15_000u64 {
                assert!(
                    db2.get(&mut c, k, &mut out).unwrap(),
                    "{variant:?}: key {k} lost"
                );
            }
        }
    }

    #[test]
    fn find_depth_distinguishes_levels() {
        let (db, mut c) = store(LsmVariant::NoFilter);
        for k in 0..30_000u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        let depths: std::collections::HashSet<usize> =
            (0..30_000u64).filter_map(|k| db.find_depth(k)).collect();
        assert!(depths.len() >= 3, "expected keys across levels: {depths:?}");
    }
}
