//! MatrixKV-like store: big in-Pmem multi-sublevel L0 (§3.7).
//!
//! A cost-structure model of MatrixKV (ATC '20) with all levels in Pmem, as
//! configured in the paper's §3.7. The behaviours behind its Fig. 17
//! numbers:
//!
//! 1. **DRAM MemTable** (unlike NoveLSM) flushed as a *RowTable* into the
//!    matrix container at L0; each RowTable carries per-key metadata that
//!    is also written to the Pmem — significant extra traffic for small
//!    values (the paper quotes ~45% of KV data size at 64B values).
//! 2. **Many L0 sublevels without Bloom filters**: a get probes the
//!    RowTables one by one; cross-row hints make each probe one DRAM hint
//!    access plus one Pmem block read, but cannot avoid the per-sublevel
//!    walk.
//! 3. **Leveled compaction below L0** with Bloom filters and per-key sort
//!    CPU, as in the NoveLSM model.
//!
//! Crash recovery is out of scope for this comparator (the paper only
//! measures §3.7 throughput/traffic); DESIGN.md records the limitation.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvapi::{hash64, KvError, KvStore, Result};
use kvlog::{LogConfig, StorageLog, ENTRY_HEADER};
use kvtables::Slot;
use parking_lot::Mutex;
use pmem_sim::{PmemDevice, ThreadCtx};

use crate::common::{merge_sorted, SortedRun, WriterPool};

/// Configuration of [`MatrixKv`].
#[derive(Debug, Clone)]
pub struct MatrixKvConfig {
    /// MemTable capacity in entries.
    pub memtable_entries: usize,
    /// RowTables the matrix container holds before a column compaction.
    pub l0_rows: usize,
    /// Level size ratio below L0.
    pub ratio: usize,
    /// Leveled levels below L0.
    pub levels: usize,
    /// Bloom bits per key below L0 (L0 itself has none).
    pub bits_per_key: usize,
    /// RowTable metadata bytes written to Pmem per key.
    pub metadata_per_key: usize,
    /// Per-thread log writers.
    pub max_threads: usize,
    /// Storage-log configuration.
    pub log: LogConfig,
}

impl Default for MatrixKvConfig {
    fn default() -> Self {
        Self {
            memtable_entries: 16 << 10,
            l0_rows: 8,
            ratio: 10,
            levels: 3,
            bits_per_key: 10,
            metadata_per_key: 32,
            max_threads: 64,
            log: LogConfig::default(),
        }
    }
}

struct MatrixInner {
    mem: BTreeMap<u64, Slot>,
    /// RowTables, oldest-first.
    l0_rows: Vec<SortedRun>,
    levels: Vec<Option<SortedRun>>,
}

/// The MatrixKV-like comparator store.
pub struct MatrixKv {
    dev: Arc<PmemDevice>,
    cfg: MatrixKvConfig,
    log: Arc<StorageLog>,
    writers: WriterPool,
    inner: Mutex<MatrixInner>,
}

impl MatrixKv {
    /// Creates a fresh store.
    pub fn create(dev: Arc<PmemDevice>, cfg: MatrixKvConfig) -> Result<Self> {
        let log = StorageLog::create(Arc::clone(&dev), cfg.log.clone())?;
        Ok(Self {
            writers: WriterPool::new(&log, cfg.max_threads),
            inner: Mutex::new(MatrixInner {
                mem: BTreeMap::new(),
                l0_rows: Vec::new(),
                levels: (0..cfg.levels).map(|_| None).collect(),
            }),
            dev,
            cfg,
            log,
        })
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    fn level_capacity(&self, level: usize) -> usize {
        self.cfg.memtable_entries * self.cfg.l0_rows * self.cfg.ratio.pow(level as u32 + 1)
    }

    /// Flush the MemTable as a RowTable (data + per-key metadata to Pmem).
    fn flush_row(&self, ctx: &mut ThreadCtx, inner: &mut MatrixInner) -> Result<()> {
        let entries: Vec<Slot> = std::mem::take(&mut inner.mem).into_values().collect();
        if entries.is_empty() {
            return Ok(());
        }
        // RowTable data: sorted run without filters (L0).
        let run = SortedRun::build(&self.dev, ctx, &entries, 0)?;
        // RowTable metadata: an extra sequential Pmem write, significant
        // relative traffic for small values (Fig. 17b's MatrixKV line).
        let meta_bytes = entries.len() * self.cfg.metadata_per_key;
        let meta_region = self.dev.alloc_region(meta_bytes.max(256) as u64)?;
        let meta = vec![0xA5u8; meta_bytes.max(1)];
        self.dev.write_nt(ctx, meta_region.off, &meta);
        self.dev.fence(ctx);
        // Metadata region lives and dies with the RowTable; fold its
        // lifetime in by freeing it immediately after accounting (it holds
        // no queryable state in this model).
        self.dev.dealloc(meta_region.off, meta_region.len);
        inner.l0_rows.push(run);
        if inner.l0_rows.len() >= self.cfg.l0_rows {
            self.column_compaction(ctx, inner)?;
        }
        Ok(())
    }

    /// Column compaction: merge every RowTable into L1, then cascade
    /// leveled compactions below.
    fn column_compaction(&self, ctx: &mut ThreadCtx, inner: &mut MatrixInner) -> Result<()> {
        let mut lists: Vec<Vec<Slot>> = Vec::new();
        for row in inner.l0_rows.iter().rev() {
            lists.push(row.iter_entries(&self.dev, ctx));
        }
        if let Some(l1) = &inner.levels[0] {
            lists.push(l1.iter_entries(&self.dev, ctx));
        }
        let merged = merge_sorted(ctx, &lists);
        let new_l1 = SortedRun::build(&self.dev, ctx, &merged, self.cfg.bits_per_key)?;
        for row in inner.l0_rows.drain(..) {
            row.free(&self.dev);
        }
        if let Some(old) = inner.levels[0].take() {
            old.free(&self.dev);
        }
        inner.levels[0] = Some(new_l1);
        for j in 0..inner.levels.len() - 1 {
            let too_big = inner.levels[j]
                .as_ref()
                .is_some_and(|r| r.len() > self.level_capacity(j));
            if !too_big {
                break;
            }
            let upper = inner.levels[j].take().expect("checked above");
            let mut lists = vec![upper.iter_entries(&self.dev, ctx)];
            if let Some(lower) = &inner.levels[j + 1] {
                lists.push(lower.iter_entries(&self.dev, ctx));
            }
            let merged = merge_sorted(ctx, &lists);
            let replacement = SortedRun::build(&self.dev, ctx, &merged, self.cfg.bits_per_key)?;
            upper.free(&self.dev);
            if let Some(old) = inner.levels[j + 1].take() {
                old.free(&self.dev);
            }
            inner.levels[j + 1] = Some(replacement);
        }
        Ok(())
    }

    fn search(&self, ctx: &mut ThreadCtx, inner: &MatrixInner, hash: u64) -> Option<Slot> {
        // DRAM MemTable: one ordered-map lookup.
        ctx.charge(ctx.cost.dram_random_ns);
        if let Some(s) = inner.mem.get(&hash) {
            return Some(*s);
        }
        // L0 RowTables, newest first, no filters: cross-row hints give one
        // DRAM access + one Pmem read per sublevel checked.
        for row in inner.l0_rows.iter().rev() {
            if let Some(s) = row.get_with_hint(&self.dev, ctx, hash) {
                return Some(s);
            }
        }
        for run in inner.levels.iter().flatten() {
            if let Some(f) = &run.filter {
                if !f.contains(ctx, hash) {
                    continue;
                }
            }
            if let Some(s) = run.get(&self.dev, ctx, hash) {
                return Some(s);
            }
        }
        None
    }
}

impl KvStore for MatrixKv {
    fn name(&self) -> &'static str {
        "matrixkv"
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let mut inner = self.inner.lock();
        let meta = self.writers.append(ctx, key, value, false)?;
        ctx.charge(ctx.cost.dram_random_ns);
        if let Some(old) = inner.mem.insert(hash, Slot::new(hash, meta.loc())) {
            let (_, hint) = kvlog::unpack_loc(old.loc);
            self.log.note_dead((ENTRY_HEADER + hint) as u64);
        }
        if inner.mem.len() >= self.cfg.memtable_entries {
            self.flush_row(ctx, &mut inner)?;
        }
        Ok(())
    }

    fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let found = {
            let inner = self.inner.lock();
            self.search(ctx, &inner, hash)
        };
        match found {
            None => Ok(false),
            Some(s) if s.is_tombstone() => Ok(false),
            Some(s) => {
                let meta = self.log.read_entry(ctx, s.location(), out)?;
                if meta.key != key {
                    return Err(KvError::Corrupt("log entry key mismatch"));
                }
                Ok(true)
            }
        }
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let mut inner = self.inner.lock();
        let existed = matches!(self.search(ctx, &inner, hash), Some(s) if !s.is_tombstone());
        let meta = self.writers.append(ctx, key, &[], true)?;
        ctx.charge(ctx.cost.dram_random_ns);
        inner.mem.insert(hash, Slot::tombstone(hash, meta.loc()));
        if inner.mem.len() >= self.cfg.memtable_entries {
            self.flush_row(ctx, &mut inner)?;
        }
        Ok(existed)
    }

    fn sync(&self, ctx: &mut ThreadCtx) -> Result<()> {
        self.writers.flush_all(ctx)
    }

    fn dram_footprint(&self) -> u64 {
        let inner = self.inner.lock();
        (inner.mem.len() * 48) as u64
            + inner.l0_rows.iter().map(SortedRun::dram_bytes).sum::<u64>()
            + inner
                .levels
                .iter()
                .flatten()
                .map(SortedRun::dram_bytes)
                .sum::<u64>()
    }

    fn approx_len(&self) -> u64 {
        let inner = self.inner.lock();
        inner.mem.len() as u64
            + inner.l0_rows.iter().map(|r| r.len() as u64).sum::<u64>()
            + inner
                .levels
                .iter()
                .flatten()
                .map(|r| r.len() as u64)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (MatrixKv, ThreadCtx) {
        let dev = PmemDevice::optane(512 << 20);
        let cfg = MatrixKvConfig {
            memtable_entries: 512,
            l0_rows: 4,
            ratio: 4,
            ..Default::default()
        };
        (
            MatrixKv::create(dev, cfg).unwrap(),
            ThreadCtx::with_default_cost(),
        )
    }

    #[test]
    fn roundtrip_through_column_compactions() {
        let (db, mut c) = store();
        let n = 20_000u64;
        for k in 0..n {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        let mut out = Vec::new();
        for k in 0..n {
            assert!(db.get(&mut c, k, &mut out).unwrap(), "key {k} missing");
            assert_eq!(out, k.to_le_bytes());
        }
        assert!(!db.get(&mut c, n + 1, &mut out).unwrap());
    }

    #[test]
    fn deletes_shadow_older_versions() {
        let (db, mut c) = store();
        for k in 0..3000u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        db.delete(&mut c, 11).unwrap();
        let mut out = Vec::new();
        assert!(!db.get(&mut c, 11, &mut out).unwrap());
        assert!(db.get(&mut c, 12, &mut out).unwrap());
    }

    #[test]
    fn rowtable_metadata_adds_pmem_traffic() {
        let dev = PmemDevice::optane(512 << 20);
        let with_meta = MatrixKv::create(
            Arc::clone(&dev),
            MatrixKvConfig {
                memtable_entries: 512,
                metadata_per_key: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let mut c = ThreadCtx::with_default_cost();
        dev.stats().reset();
        for k in 0..5000u64 {
            with_meta.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        with_meta.sync(&mut c).unwrap();
        let traffic_with = dev.stats().snapshot().media_bytes_written;

        let dev2 = PmemDevice::optane(512 << 20);
        let without = MatrixKv::create(
            Arc::clone(&dev2),
            MatrixKvConfig {
                memtable_entries: 512,
                metadata_per_key: 0,
                ..Default::default()
            },
        )
        .unwrap();
        dev2.stats().reset();
        for k in 0..5000u64 {
            without.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        without.sync(&mut c).unwrap();
        let traffic_without = dev2.stats().snapshot().media_bytes_written;
        assert!(
            traffic_with > traffic_without + 100_000,
            "metadata must add Pmem traffic: {traffic_with} vs {traffic_without}"
        );
    }

    #[test]
    fn l0_probes_walk_sublevels() {
        let (db, mut c) = store();
        // Fill fewer than l0_rows * memtable so rows accumulate unmerged.
        for k in 0..1500u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        // A miss must walk all rows: clock cost grows with row count.
        let mut out = Vec::new();
        let before = c.clock.now();
        db.get(&mut c, 999_999, &mut out).unwrap();
        let miss_cost = c.clock.now() - before;
        assert!(
            miss_cost > db.device().profile().read_latency_ns,
            "a miss should probe at least one Pmem row"
        );
    }
}
