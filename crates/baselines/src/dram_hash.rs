//! Dram-Hash: full index in DRAM, values in the Pmem log (§3.2).

use std::sync::Arc;

use kvapi::{hash64, CrashRecover, KvError, KvStore, Result};
use kvlog::{LogConfig, StorageLog, ENTRY_HEADER};
use kvtables::RobinHoodMap;
use parking_lot::Mutex;
use pmem_sim::{PmemDevice, ThreadCtx};

use crate::common::WriterPool;

/// Configuration of [`DramHash`].
#[derive(Debug, Clone)]
pub struct DramHashConfig {
    /// Lock stripes over the index (the paper's robin-hood table is a
    /// single map; striping stands in for its fine-grained locking).
    pub stripes: usize,
    /// Initial per-stripe capacity.
    pub initial_capacity: usize,
    /// Per-thread log writers to pre-allocate.
    pub max_threads: usize,
    /// Storage-log configuration.
    pub log: LogConfig,
}

impl Default for DramHashConfig {
    fn default() -> Self {
        Self {
            stripes: 64,
            initial_capacity: 1024,
            max_threads: 64,
            log: LogConfig::default(),
        }
    }
}

/// The Dram-Hash baseline: a growable robin-hood map from key hash to log
/// location, entirely in DRAM.
///
/// The paper's fastest store for both puts and gets — and the one with the
/// largest DRAM footprint and the slowest restart, because the whole index
/// must be rebuilt by replaying the log (§1.3, Table 4).
pub struct DramHash {
    dev: Arc<PmemDevice>,
    cfg: DramHashConfig,
    log: Arc<StorageLog>,
    writers: WriterPool,
    stripes: Vec<Mutex<RobinHoodMap>>,
}

impl DramHash {
    /// Creates a fresh store.
    pub fn create(dev: Arc<PmemDevice>, cfg: DramHashConfig) -> Result<Self> {
        let log = StorageLog::create(Arc::clone(&dev), cfg.log.clone())?;
        Ok(Self {
            writers: WriterPool::new(&log, cfg.max_threads),
            stripes: (0..cfg.stripes.next_power_of_two())
                .map(|_| Mutex::new(RobinHoodMap::new(cfg.initial_capacity)))
                .collect(),
            dev,
            cfg,
            log,
        })
    }

    /// Rebuilds the store after a crash by replaying the entire log —
    /// one sequential scan plus one DRAM index insert per surviving entry,
    /// which is exactly why Table 4 reports a restart of minutes-scale for
    /// a billion keys.
    pub fn recover(dev: Arc<PmemDevice>, cfg: DramHashConfig, ctx: &mut ThreadCtx) -> Result<Self> {
        // The log is the device's first allocation for this store.
        let region = pmem_sim::PRegion {
            off: 256,
            len: cfg.log.capacity,
        };
        let mut entries: std::collections::HashMap<u64, (u64, u64, bool)> =
            std::collections::HashMap::new();
        let log = StorageLog::reopen_with(Arc::clone(&dev), region, cfg.log.clone(), ctx, |m| {
            let h = hash64(m.key);
            let e = entries.entry(h).or_insert((m.seq, m.loc(), m.tombstone));
            if m.seq >= e.0 {
                *e = (m.seq, m.loc(), m.tombstone);
            }
        })?;
        let store = Self {
            writers: WriterPool::new(&log, cfg.max_threads),
            stripes: (0..cfg.stripes.next_power_of_two())
                .map(|_| Mutex::new(RobinHoodMap::new(cfg.initial_capacity)))
                .collect(),
            dev,
            cfg,
            log,
        };
        for (hash, (_seq, loc, tombstone)) in entries {
            if !tombstone {
                store.stripe(hash).lock().insert(ctx, hash, loc);
            }
        }
        Ok(store)
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    fn stripe(&self, hash: u64) -> &Mutex<RobinHoodMap> {
        // Use high bits: low bits drive in-map placement.
        let idx = (hash >> (64 - self.stripes.len().trailing_zeros())) as usize;
        &self.stripes[idx]
    }
}

impl KvStore for DramHash {
    fn name(&self) -> &'static str {
        "dram-hash"
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let meta = self.writers.append(ctx, key, value, false)?;
        let mut map = self.stripe(hash).lock();
        if let Some(old) = map.insert(ctx, hash, meta.loc()) {
            let (_, hint) = kvlog::unpack_loc(old);
            self.log.note_dead((ENTRY_HEADER + hint) as u64);
        }
        Ok(())
    }

    fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let loc = { self.stripe(hash).lock().get(ctx, hash) };
        match loc {
            None => Ok(false),
            Some(loc) => {
                let meta = self.log.read_entry(ctx, loc, out)?;
                if meta.key != key {
                    return Err(KvError::Corrupt("log entry key mismatch"));
                }
                Ok(true)
            }
        }
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        // Tombstone in the log so recovery observes the delete.
        self.writers.append(ctx, key, &[], true)?;
        let old = self.stripe(hash).lock().remove(ctx, hash);
        Ok(old.is_some())
    }

    fn sync(&self, ctx: &mut ThreadCtx) -> Result<()> {
        self.writers.flush_all(ctx)
    }

    fn dram_footprint(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().dram_bytes()).sum()
    }

    fn approx_len(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().len() as u64).sum()
    }
}

impl CrashRecover for DramHash {
    fn crash_and_recover(&mut self, ctx: &mut ThreadCtx) -> Result<()> {
        self.dev.crash();
        *self = DramHash::recover(Arc::clone(&self.dev), self.cfg.clone(), ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DramHash, ThreadCtx) {
        let dev = PmemDevice::optane(512 << 20);
        (
            DramHash::create(dev, DramHashConfig::default()).unwrap(),
            ThreadCtx::with_default_cost(),
        )
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (db, mut c) = setup();
        for k in 0..5000u64 {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        let mut out = Vec::new();
        for k in 0..5000u64 {
            assert!(db.get(&mut c, k, &mut out).unwrap());
            assert_eq!(out, k.to_le_bytes());
        }
        assert!(db.delete(&mut c, 7).unwrap());
        assert!(!db.get(&mut c, 7, &mut out).unwrap());
        assert!(!db.delete(&mut c, 7).unwrap());
    }

    #[test]
    fn recovery_replays_full_log() {
        let dev = PmemDevice::optane(512 << 20);
        let cfg = DramHashConfig::default();
        let db = DramHash::create(Arc::clone(&dev), cfg.clone()).unwrap();
        let mut c = ThreadCtx::with_default_cost();
        for k in 0..3000u64 {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        db.delete(&mut c, 5).unwrap();
        db.put(&mut c, 6, b"newer").unwrap();
        db.sync(&mut c).unwrap();
        drop(db);
        dev.crash();
        let before = c.clock.now();
        let db2 = DramHash::recover(Arc::clone(&dev), cfg, &mut c).unwrap();
        let restart = c.clock.now() - before;
        assert!(restart > 0);
        let mut out = Vec::new();
        assert!(!db2.get(&mut c, 5, &mut out).unwrap());
        assert!(db2.get(&mut c, 6, &mut out).unwrap());
        assert_eq!(out, b"newer");
        for k in 0..3000u64 {
            if k == 5 {
                continue;
            }
            assert!(db2.get(&mut c, k, &mut out).unwrap(), "key {k} lost");
        }
    }

    #[test]
    fn footprint_grows_with_entries() {
        let (db, mut c) = setup();
        let before = db.dram_footprint();
        for k in 0..200_000u64 {
            db.put(&mut c, k, b"x").unwrap();
        }
        assert!(db.dram_footprint() > before);
        assert_eq!(db.approx_len(), 200_000);
    }
}
