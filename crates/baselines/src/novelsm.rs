//! NoveLSM-like store: in-Pmem mutable MemTable + leveled LSM (§3.7).
//!
//! A cost-structure model of NoveLSM (ATC '18) with all levels placed in
//! the Pmem, as in the paper's §3.7 configuration. The behaviours that
//! drive its Fig. 17 results are implemented for real:
//!
//! 1. **In-Pmem mutable MemTable** — every put persists a skiplist node
//!    (small random write → 256B read-modify-write) plus a predecessor
//!    pointer update, and searches walk dependent Pmem reads.
//! 2. **Leveled compaction** — each level is one key-sorted run; merging
//!    level `k` rewrites all of level `k+1` (high write amplification).
//! 3. **Bloom filters at every level** and per-key sort CPU on every
//!    flush/compaction (the CPU bottleneck the paper measures).
//!
//! Crash recovery is out of scope for this comparator (the paper only
//! measures §3.7 throughput/traffic); DESIGN.md records the limitation.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvapi::{hash64, KvError, KvStore, Result};
use kvlog::{LogConfig, StorageLog, ENTRY_HEADER};
use kvtables::Slot;
use parking_lot::Mutex;
use pmem_sim::{PRegion, PmemDevice, ThreadCtx};

use crate::common::{merge_sorted, SortedRun, WriterPool};

/// Configuration of [`NoveLsm`].
#[derive(Debug, Clone)]
pub struct NoveLsmConfig {
    /// MemTable capacity in entries before a flush.
    pub memtable_entries: usize,
    /// Maximum L0 runs before a compaction into L1.
    pub l0_runs: usize,
    /// Level size ratio (LevelDB uses 10).
    pub ratio: usize,
    /// Number of leveled levels (L1..).
    pub levels: usize,
    /// Bloom bits per key (filters at every level).
    pub bits_per_key: usize,
    /// Pmem arena reserved for the in-Pmem skiplist.
    pub skiplist_arena: u64,
    /// Per-thread log writers.
    pub max_threads: usize,
    /// Storage-log configuration.
    pub log: LogConfig,
}

impl Default for NoveLsmConfig {
    fn default() -> Self {
        Self {
            memtable_entries: 16 << 10,
            l0_runs: 2,
            ratio: 10,
            levels: 4,
            bits_per_key: 10,
            skiplist_arena: 64 << 20,
            max_threads: 64,
            log: LogConfig::default(),
        }
    }
}

/// The in-Pmem skiplist MemTable model: an ordered DRAM map for contents,
/// with every structural operation charged as the Pmem traffic a real
/// persistent skiplist performs.
struct PmemSkiplist {
    map: BTreeMap<u64, Slot>,
    region: PRegion,
    cursor: u64,
    /// Offsets of live nodes; search paths read a sample of these.
    node_offs: Vec<u64>,
}

const NODE_BYTES: u64 = 40; // key + loc + avg 3 level pointers

impl PmemSkiplist {
    fn new(region: PRegion) -> Self {
        Self {
            map: BTreeMap::new(),
            region,
            cursor: 0,
            node_offs: Vec::new(),
        }
    }

    fn search_cost(&self, dev: &PmemDevice, ctx: &mut ThreadCtx, hash: u64) {
        // Walk ~log2(n) dependent nodes; read real (sampled) node offsets
        // so media-read accounting stays honest.
        let n = self.map.len().max(2);
        let steps = (usize::BITS - n.leading_zeros()) as u64;
        let mut buf = [0u8; 16];
        for i in 0..steps {
            ctx.charge(ctx.cost.skiplist_step_ns);
            if !self.node_offs.is_empty() {
                let pick = kvapi::mix64(hash ^ i) as usize % self.node_offs.len();
                dev.read(ctx, self.node_offs[pick], &mut buf);
            }
        }
    }

    fn insert(&mut self, dev: &PmemDevice, ctx: &mut ThreadCtx, slot: Slot) -> Result<Option<u64>> {
        self.search_cost(dev, ctx, slot.hash);
        if self.cursor + NODE_BYTES > self.region.len {
            return Err(KvError::Full("novelsm skiplist arena"));
        }
        let node_off = self.region.off + self.cursor;
        self.cursor += NODE_BYTES;
        // Persist the node, then the predecessor's pointer — two small
        // random writes, each a read-modify-write on the media.
        let mut node = [0u8; NODE_BYTES as usize];
        node[0..8].copy_from_slice(&slot.hash.to_le_bytes());
        node[8..16].copy_from_slice(&slot.loc.to_le_bytes());
        dev.persist(ctx, node_off, &node);
        if let Some(&pred) = self.node_offs.last() {
            dev.persist(ctx, pred + 16, &node_off.to_le_bytes());
        }
        self.node_offs.push(node_off);
        Ok(self.map.insert(slot.hash, slot).map(|s| s.loc))
    }

    fn get(&self, dev: &PmemDevice, ctx: &mut ThreadCtx, hash: u64) -> Option<Slot> {
        self.search_cost(dev, ctx, hash);
        self.map.get(&hash).copied()
    }

    fn drain_sorted(&mut self) -> Vec<Slot> {
        self.node_offs.clear();
        self.cursor = 0;
        std::mem::take(&mut self.map).into_values().collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

struct NoveInner {
    mem: PmemSkiplist,
    l0: Vec<SortedRun>,
    /// One sorted run per level, L1 upward.
    levels: Vec<Option<SortedRun>>,
}

/// The NoveLSM-like comparator store.
pub struct NoveLsm {
    dev: Arc<PmemDevice>,
    cfg: NoveLsmConfig,
    log: Arc<StorageLog>,
    writers: WriterPool,
    inner: Mutex<NoveInner>,
}

impl NoveLsm {
    /// Creates a fresh store.
    pub fn create(dev: Arc<PmemDevice>, cfg: NoveLsmConfig) -> Result<Self> {
        let log = StorageLog::create(Arc::clone(&dev), cfg.log.clone())?;
        let arena = dev.alloc_region(cfg.skiplist_arena)?;
        Ok(Self {
            writers: WriterPool::new(&log, cfg.max_threads),
            inner: Mutex::new(NoveInner {
                mem: PmemSkiplist::new(arena),
                l0: Vec::new(),
                levels: (0..cfg.levels).map(|_| None).collect(),
            }),
            dev,
            cfg,
            log,
        })
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    fn level_capacity(&self, level: usize) -> usize {
        self.cfg.memtable_entries * self.cfg.l0_runs * self.cfg.ratio.pow(level as u32 + 1)
    }

    fn flush_and_compact(&self, ctx: &mut ThreadCtx, inner: &mut NoveInner) -> Result<()> {
        let entries = inner.mem.drain_sorted();
        if entries.is_empty() {
            return Ok(());
        }
        let run = SortedRun::build(&self.dev, ctx, &entries, self.cfg.bits_per_key)?;
        inner.l0.push(run);
        if inner.l0.len() < self.cfg.l0_runs {
            return Ok(());
        }
        // Leveled compaction cascade: L0 runs merge into L1 (rewriting all
        // of L1), and oversized levels keep cascading down.
        let mut lists: Vec<Vec<Slot>> = Vec::new();
        for run in inner.l0.iter().rev() {
            lists.push(run.iter_entries(&self.dev, ctx));
        }
        if let Some(l1) = &inner.levels[0] {
            lists.push(l1.iter_entries(&self.dev, ctx));
        }
        let merged = merge_sorted(ctx, &lists);
        let new_l1 = SortedRun::build(&self.dev, ctx, &merged, self.cfg.bits_per_key)?;
        for run in inner.l0.drain(..) {
            run.free(&self.dev);
        }
        if let Some(old) = inner.levels[0].take() {
            old.free(&self.dev);
        }
        inner.levels[0] = Some(new_l1);
        for j in 0..inner.levels.len() - 1 {
            let too_big = inner.levels[j]
                .as_ref()
                .is_some_and(|r| r.len() > self.level_capacity(j));
            if !too_big {
                break;
            }
            let upper = inner.levels[j].take().expect("checked above");
            let mut lists = vec![upper.iter_entries(&self.dev, ctx)];
            if let Some(lower) = &inner.levels[j + 1] {
                lists.push(lower.iter_entries(&self.dev, ctx));
            }
            let merged = merge_sorted(ctx, &lists);
            let replacement = SortedRun::build(&self.dev, ctx, &merged, self.cfg.bits_per_key)?;
            upper.free(&self.dev);
            if let Some(old) = inner.levels[j + 1].take() {
                old.free(&self.dev);
            }
            inner.levels[j + 1] = Some(replacement);
        }
        Ok(())
    }

    fn search(&self, ctx: &mut ThreadCtx, inner: &NoveInner, hash: u64) -> Option<Slot> {
        if let Some(s) = inner.mem.get(&self.dev, ctx, hash) {
            return Some(s);
        }
        for run in inner.l0.iter().rev() {
            if let Some(f) = &run.filter {
                if !f.contains(ctx, hash) {
                    continue;
                }
            }
            if let Some(s) = run.get(&self.dev, ctx, hash) {
                return Some(s);
            }
        }
        for run in inner.levels.iter().flatten() {
            if let Some(f) = &run.filter {
                if !f.contains(ctx, hash) {
                    continue;
                }
            }
            if let Some(s) = run.get(&self.dev, ctx, hash) {
                return Some(s);
            }
        }
        None
    }
}

impl KvStore for NoveLsm {
    fn name(&self) -> &'static str {
        "novelsm"
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let mut inner = self.inner.lock();
        let meta = self.writers.append(ctx, key, value, false)?;
        if let Some(old) = inner
            .mem
            .insert(&self.dev, ctx, Slot::new(hash, meta.loc()))?
        {
            let (_, hint) = kvlog::unpack_loc(old);
            self.log.note_dead((ENTRY_HEADER + hint) as u64);
        }
        if inner.mem.len() >= self.cfg.memtable_entries {
            self.flush_and_compact(ctx, &mut inner)?;
        }
        Ok(())
    }

    fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let found = {
            let inner = self.inner.lock();
            self.search(ctx, &inner, hash)
        };
        match found {
            None => Ok(false),
            Some(s) if s.is_tombstone() => Ok(false),
            Some(s) => {
                let meta = self.log.read_entry(ctx, s.location(), out)?;
                if meta.key != key {
                    return Err(KvError::Corrupt("log entry key mismatch"));
                }
                Ok(true)
            }
        }
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let mut inner = self.inner.lock();
        let existed = matches!(self.search(ctx, &inner, hash), Some(s) if !s.is_tombstone());
        let meta = self.writers.append(ctx, key, &[], true)?;
        inner
            .mem
            .insert(&self.dev, ctx, Slot::tombstone(hash, meta.loc()))?;
        if inner.mem.len() >= self.cfg.memtable_entries {
            self.flush_and_compact(ctx, &mut inner)?;
        }
        Ok(existed)
    }

    fn sync(&self, ctx: &mut ThreadCtx) -> Result<()> {
        self.writers.flush_all(ctx)
    }

    fn dram_footprint(&self) -> u64 {
        let inner = self.inner.lock();
        inner.l0.iter().map(SortedRun::dram_bytes).sum::<u64>()
            + inner
                .levels
                .iter()
                .flatten()
                .map(SortedRun::dram_bytes)
                .sum::<u64>()
    }

    fn approx_len(&self) -> u64 {
        let inner = self.inner.lock();
        inner.mem.len() as u64
            + inner.l0.iter().map(|r| r.len() as u64).sum::<u64>()
            + inner
                .levels
                .iter()
                .flatten()
                .map(|r| r.len() as u64)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (NoveLsm, ThreadCtx) {
        let dev = PmemDevice::optane(512 << 20);
        let cfg = NoveLsmConfig {
            memtable_entries: 512,
            ratio: 4,
            ..Default::default()
        };
        (
            NoveLsm::create(dev, cfg).unwrap(),
            ThreadCtx::with_default_cost(),
        )
    }

    #[test]
    fn roundtrip_through_leveled_compactions() {
        let (db, mut c) = store();
        let n = 20_000u64;
        for k in 0..n {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        let mut out = Vec::new();
        for k in 0..n {
            assert!(db.get(&mut c, k, &mut out).unwrap(), "key {k} missing");
            assert_eq!(out, k.to_le_bytes());
        }
        assert!(!db.get(&mut c, n + 1, &mut out).unwrap());
    }

    #[test]
    fn overwrites_and_deletes() {
        let (db, mut c) = store();
        for k in 0..3000u64 {
            db.put(&mut c, k, b"old").unwrap();
        }
        for k in 0..3000u64 {
            db.put(&mut c, k, b"new").unwrap();
        }
        db.delete(&mut c, 7).unwrap();
        let mut out = Vec::new();
        assert!(!db.get(&mut c, 7, &mut out).unwrap());
        assert!(db.get(&mut c, 8, &mut out).unwrap());
        assert_eq!(out, b"new");
    }

    #[test]
    fn memtable_puts_do_small_pmem_writes() {
        let (db, mut c) = store();
        db.device().stats().reset();
        for k in 0..400u64 {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        let s = db.device().stats().snapshot();
        assert!(
            s.rmw_blocks > 400,
            "skiplist node persists must be sub-block writes (got {} RMWs)",
            s.rmw_blocks
        );
    }

    #[test]
    fn leveled_compaction_amplifies_writes_more_than_data() {
        let (db, mut c) = store();
        db.device().stats().reset();
        for k in 0..30_000u64 {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        db.sync(&mut c).unwrap();
        let s = db.device().stats().snapshot();
        // Leveled rewrites push media traffic well above the logical data.
        assert!(
            s.media_bytes_written > 2 * s.logical_bytes_written,
            "expected leveled write amplification, got {:.2}",
            s.write_amplification()
        );
    }
}
