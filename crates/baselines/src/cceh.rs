//! Pmem-Hash: CCEH, a persistent extendible hash table (FAST '19; §3.2).
//!
//! CCEH keeps the whole index *in place on Pmem*: a directory of fixed-size
//! segments, each a bounded-linear-probing table of 16-byte slots. Every
//! insert persists one 16-byte slot with a flush+fence — a sub-256B store
//! that the device must read-modify-write, which is exactly the write
//! amplification the paper blames for Pmem-Hash's low put throughput
//! (§1.1, Fig. 10). Segment splits rewrite 2x a segment sequentially and
//! update directory entries in place.
//!
//! Recovery is cheap: the directory and segments are already on Pmem; only
//! the small DRAM runtime (directory cache) is rebuilt (Table 4).

use std::sync::Arc;

use kvapi::{hash64, CrashRecover, KvError, KvStore, Result};
use kvlog::{LogConfig, StorageLog, ENTRY_HEADER};
use kvtables::{Slot, SLOT_BYTES};
use parking_lot::{Mutex, RwLock};
use pmem_sim::{PRegion, PmemDevice, ThreadCtx};

use crate::common::WriterPool;

const SB_MAGIC: u64 = 0x4343_4548_5F53_4231; // "CCEH_SB1"
const SEG_MAGIC: u64 = 0x4343_4548_5F53_4731; // "CCEH_SG1"
const SEG_HEADER: u64 = 256;

/// Configuration of [`PmemHash`] (CCEH defaults).
#[derive(Debug, Clone)]
pub struct CcehConfig {
    /// Segment size in bytes (CCEH default 16KB).
    pub segment_bytes: u64,
    /// Probe window in slots from the home bucket (CCEH probes within a
    /// small constant number of cache lines).
    pub probe_slots: usize,
    /// Initial global depth (2^depth segments).
    pub initial_depth: u32,
    /// Per-thread log writers.
    pub max_threads: usize,
    /// Storage-log configuration.
    pub log: LogConfig,
}

impl Default for CcehConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 16 << 10,
            probe_slots: 16,
            initial_depth: 2,
            max_threads: 64,
            log: LogConfig::default(),
        }
    }
}

/// Runtime handle to one persistent segment.
struct SegHandle {
    region: PRegion,
    /// Guards all writes into this segment.
    lock: Mutex<SegMeta>,
}

struct SegMeta {
    local_depth: u32,
    /// True once this handle has been superseded by a split.
    retired: bool,
}

struct Directory {
    depth: u32,
    /// Persistent array of segment offsets (2^depth entries of 8B).
    region: PRegion,
    segs: Vec<Arc<SegHandle>>,
}

/// The Pmem-Hash baseline (CCEH).
pub struct PmemHash {
    dev: Arc<PmemDevice>,
    cfg: CcehConfig,
    log: Arc<StorageLog>,
    writers: WriterPool,
    dir: RwLock<Directory>,
    sb_off: u64,
}

impl PmemHash {
    fn seg_slots(cfg: &CcehConfig) -> u64 {
        (cfg.segment_bytes - SEG_HEADER) / SLOT_BYTES as u64
    }

    /// Creates a fresh store. Must be the first allocator client of `dev`.
    pub fn create(dev: Arc<PmemDevice>, cfg: CcehConfig) -> Result<Self> {
        let mut ctx = ThreadCtx::with_default_cost();
        let sb_off = dev.alloc(256)?;
        let log = StorageLog::create(Arc::clone(&dev), cfg.log.clone())?;
        let depth = cfg.initial_depth;
        let n = 1usize << depth;
        let mut segs = Vec::with_capacity(n);
        for _ in 0..n {
            let region = dev.alloc_region(cfg.segment_bytes)?;
            Self::write_segment_header(&dev, &mut ctx, region, depth);
            segs.push(Arc::new(SegHandle {
                region,
                lock: Mutex::new(SegMeta {
                    local_depth: depth,
                    retired: false,
                }),
            }));
        }
        let dir_region = dev.alloc_region((n * 8) as u64)?;
        let mut dir_bytes = Vec::with_capacity(n * 8);
        for s in &segs {
            dir_bytes.extend_from_slice(&s.region.off.to_le_bytes());
        }
        dev.persist(&mut ctx, dir_region.off, &dir_bytes);
        let store = Self {
            writers: WriterPool::new(&log, cfg.max_threads),
            dir: RwLock::new(Directory {
                depth,
                region: dir_region,
                segs,
            }),
            sb_off,
            dev,
            cfg,
            log,
        };
        store.write_superblock(&mut ctx);
        Ok(store)
    }

    /// Reopens after a crash: reads the superblock, the persistent
    /// directory, and each distinct segment header — no log replay needed
    /// because the index itself is persistent (Table 4's fast restart).
    pub fn recover(dev: Arc<PmemDevice>, cfg: CcehConfig, ctx: &mut ThreadCtx) -> Result<Self> {
        let sb_off = 256u64;
        let mut sb = [0u8; 64];
        dev.read(ctx, sb_off, &mut sb);
        let word = |i: usize| u64::from_le_bytes(sb[i..i + 8].try_into().expect("sb"));
        if word(0) != SB_MAGIC {
            return Err(KvError::Corrupt("cceh superblock magic"));
        }
        let depth = word(8) as u32;
        let dir_region = PRegion {
            off: word(16),
            len: word(24),
        };
        let log_region = PRegion {
            off: word(32),
            len: word(40),
        };
        let n = 1usize << depth;
        let mut dir_bytes = vec![0u8; n * 8];
        dev.read(ctx, dir_region.off, &mut dir_bytes);
        let mut handles: std::collections::HashMap<u64, Arc<SegHandle>> =
            std::collections::HashMap::new();
        let mut segs = Vec::with_capacity(n);
        let mut high_water = dir_region.end().max(log_region.end()).max(sb_off + 256);
        let mut live = dir_region.len + log_region.len + 256;
        for chunk in dir_bytes.chunks_exact(8) {
            let off = u64::from_le_bytes(chunk.try_into().expect("dir entry"));
            let handle = match handles.get(&off) {
                Some(h) => Arc::clone(h),
                None => {
                    let mut head = [0u8; 16];
                    dev.read(ctx, off, &mut head);
                    if u64::from_le_bytes(head[0..8].try_into().expect("seg")) != SEG_MAGIC {
                        return Err(KvError::Corrupt("cceh segment magic"));
                    }
                    let local = u64::from_le_bytes(head[8..16].try_into().expect("seg")) as u32;
                    let region = PRegion {
                        off,
                        len: cfg.segment_bytes,
                    };
                    high_water = high_water.max(region.end());
                    live += region.len;
                    let h = Arc::new(SegHandle {
                        region,
                        lock: Mutex::new(SegMeta {
                            local_depth: local,
                            retired: false,
                        }),
                    });
                    handles.insert(off, Arc::clone(&h));
                    h
                }
            };
            segs.push(handle);
        }
        dev.reset_allocator(high_water, live);
        let log = StorageLog::reopen(Arc::clone(&dev), log_region, cfg.log.clone(), ctx)?;
        Ok(Self {
            writers: WriterPool::new(&log, cfg.max_threads),
            dir: RwLock::new(Directory {
                depth,
                region: dir_region,
                segs,
            }),
            sb_off,
            dev,
            cfg,
            log,
        })
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    /// Current global depth (test aid).
    pub fn global_depth(&self) -> u32 {
        self.dir.read().depth
    }

    /// Number of distinct segments (test aid).
    pub fn segment_count(&self) -> usize {
        let dir = self.dir.read();
        let mut offs: Vec<u64> = dir.segs.iter().map(|s| s.region.off).collect();
        offs.sort_unstable();
        offs.dedup();
        offs.len()
    }

    fn write_superblock(&self, ctx: &mut ThreadCtx) {
        let dir = self.dir.read();
        let mut sb = [0u8; 64];
        sb[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&(dir.depth as u64).to_le_bytes());
        sb[16..24].copy_from_slice(&dir.region.off.to_le_bytes());
        sb[24..32].copy_from_slice(&dir.region.len.to_le_bytes());
        sb[32..40].copy_from_slice(&self.log.region().off.to_le_bytes());
        sb[40..48].copy_from_slice(&self.log.region().len.to_le_bytes());
        self.dev.persist(ctx, self.sb_off, &sb);
    }

    fn write_segment_header(dev: &PmemDevice, ctx: &mut ThreadCtx, region: PRegion, local: u32) {
        let mut head = [0u8; 16];
        head[0..8].copy_from_slice(&SEG_MAGIC.to_le_bytes());
        head[8..16].copy_from_slice(&(local as u64).to_le_bytes());
        dev.persist(ctx, region.off, &head);
    }

    #[inline]
    fn dir_index(depth: u32, hash: u64) -> usize {
        if depth == 0 {
            0
        } else {
            (hash >> (64 - depth)) as usize
        }
    }

    /// Slot offset of probe position `i` for `hash` within a segment.
    fn slot_off(&self, region: PRegion, hash: u64, i: usize) -> u64 {
        let slots = Self::seg_slots(&self.cfg);
        // Low 32 bits choose the home bucket (directory consumed the top).
        let home = (hash & 0xFFFF_FFFF) % slots;
        let idx = (home + i as u64) % slots;
        region.off + SEG_HEADER + idx * SLOT_BYTES as u64
    }

    /// Probes the window for `hash`. Returns `(slot_offset, existing_slot)`
    /// where `existing_slot` is the current occupant (possibly empty).
    /// `None` means the window is full of other keys.
    fn probe(
        &self,
        ctx: &mut ThreadCtx,
        region: PRegion,
        hash: u64,
    ) -> Option<(u64, Option<Slot>)> {
        // Fetch the whole probe window in one device access (it spans at
        // most a couple of cache lines, like real CCEH's bucket probing);
        // a wrap at the segment end needs a second, sequential access.
        let window = self.cfg.probe_slots * SLOT_BYTES;
        let mut buf = vec![0u8; window];
        let start = self.slot_off(region, hash, 0);
        let seg_end = region.off + self.cfg.segment_bytes;
        let contiguous = ((seg_end - start) as usize).min(window);
        self.dev.read(ctx, start, &mut buf[..contiguous]);
        if contiguous < window {
            let wrap = window - contiguous;
            self.dev
                .read_adjacent(ctx, region.off + SEG_HEADER, &mut buf[contiguous..]);
            debug_assert!(wrap < self.cfg.segment_bytes as usize);
        }
        let mut first_empty: Option<u64> = None;
        for i in 0..self.cfg.probe_slots {
            ctx.charge(ctx.cost.key_cmp_ns);
            let slot = Slot::decode(&buf[i * SLOT_BYTES..(i + 1) * SLOT_BYTES]);
            let off = self.slot_off(region, hash, i);
            if slot.is_empty() {
                // Bounded probing scans the whole window: deletions may
                // have punched holes before a live key.
                if first_empty.is_none() {
                    first_empty = Some(off);
                }
                continue;
            }
            if slot.hash == hash {
                return Some((off, Some(slot)));
            }
        }
        first_empty.map(|off| (off, None))
    }

    /// Looks up `hash`, returning its slot if present.
    fn lookup(&self, ctx: &mut ThreadCtx, hash: u64) -> Option<Slot> {
        loop {
            let seg = {
                let dir = self.dir.read();
                ctx.charge(ctx.cost.dram_l2_ns);
                Arc::clone(&dir.segs[Self::dir_index(dir.depth, hash)])
            };
            let found = match self.probe(ctx, seg.region, hash) {
                Some((_, Some(slot))) => Some(slot),
                _ => None,
            };
            // A concurrent split retires the segment and then *deallocates*
            // its region, so a stale handle may have probed recycled bytes.
            // `retired` is flipped under the segment lock strictly before
            // the dealloc; observing it still false here proves the region
            // was live for the whole probe above.
            if seg.lock.lock().retired {
                continue;
            }
            return found;
        }
    }

    /// Inserts or overwrites `hash -> loc` (the in-place 16B persist).
    fn insert(&self, ctx: &mut ThreadCtx, hash: u64, loc: u64) -> Result<Option<u64>> {
        loop {
            let seg = {
                let dir = self.dir.read();
                Arc::clone(&dir.segs[Self::dir_index(dir.depth, hash)])
            };
            let meta = seg.lock.lock();
            if meta.retired {
                continue; // split raced us; re-resolve via the directory
            }
            match self.probe(ctx, seg.region, hash) {
                Some((off, existing)) => {
                    let slot = Slot { hash, loc };
                    self.dev.persist(ctx, off, &slot.encode());
                    return Ok(existing.map(|s| s.loc));
                }
                None => {
                    drop(meta);
                    self.split(ctx, &seg, hash)?;
                    // Retry after the split.
                }
            }
        }
    }

    /// Splits `seg` into two segments one bit deeper, doubling the
    /// directory first if needed.
    fn split(&self, ctx: &mut ThreadCtx, seg: &Arc<SegHandle>, _hash: u64) -> Result<()> {
        let mut dir = self.dir.write();
        let mut meta = seg.lock.lock();
        if meta.retired {
            return Ok(()); // someone else split it
        }
        if meta.local_depth == dir.depth {
            self.double_directory(ctx, &mut dir)?;
        }
        let local = meta.local_depth;
        // Read the whole old segment (sequential).
        let slots = Self::seg_slots(&self.cfg) as usize;
        let mut data = vec![0u8; slots * SLOT_BYTES];
        self.dev.read(ctx, seg.region.off + SEG_HEADER, &mut data);
        // Build both halves in DRAM, then write them sequentially.
        let mut halves = [vec![0u8; slots * SLOT_BYTES], vec![0u8; slots * SLOT_BYTES]];
        for chunk in data.chunks_exact(SLOT_BYTES) {
            let slot = Slot::decode(chunk);
            if slot.is_empty() {
                continue;
            }
            ctx.charge(ctx.cost.hash_ns);
            let bit = ((slot.hash >> (63 - local)) & 1) as usize;
            // Re-place within the new segment by bounded probing in DRAM.
            let home = (slot.hash & 0xFFFF_FFFF) % slots as u64;
            let mut placed = false;
            for i in 0..self.cfg.probe_slots {
                let idx = ((home + i as u64) % slots as u64) as usize * SLOT_BYTES;
                if Slot::decode(&halves[bit][idx..idx + SLOT_BYTES]).is_empty() {
                    halves[bit][idx..idx + SLOT_BYTES].copy_from_slice(&slot.encode());
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(KvError::Full("cceh split could not re-place a slot"));
            }
        }
        let mut new_handles = Vec::with_capacity(2);
        for half in &halves {
            let region = self.dev.alloc_region(self.cfg.segment_bytes)?;
            Self::write_segment_header(&self.dev, ctx, region, local + 1);
            self.dev.write_nt(ctx, region.off + SEG_HEADER, half);
            self.dev.fence(ctx);
            new_handles.push(Arc::new(SegHandle {
                region,
                lock: Mutex::new(SegMeta {
                    local_depth: local + 1,
                    retired: false,
                }),
            }));
        }
        // Update every directory entry that pointed at the old segment;
        // in extendible hashing those entries are contiguous.
        let span = 1usize << (dir.depth - local);
        let first = dir
            .segs
            .iter()
            .position(|s| s.region.off == seg.region.off)
            .expect("split segment must be referenced by the directory");
        for j in 0..span {
            let idx = first + j;
            let which = (j >= span / 2) as usize;
            dir.segs[idx] = Arc::clone(&new_handles[which]);
            let entry_off = dir.region.off + (idx as u64) * 8;
            self.dev
                .write_nt(ctx, entry_off, &new_handles[which].region.off.to_le_bytes());
        }
        self.dev.fence(ctx);
        meta.retired = true;
        drop(meta);
        self.dev.dealloc(seg.region.off, seg.region.len);
        Ok(())
    }

    fn double_directory(&self, ctx: &mut ThreadCtx, dir: &mut Directory) -> Result<()> {
        let n = dir.segs.len();
        let new_region = self.dev.alloc_region((n as u64) * 16)?;
        let mut new_segs = Vec::with_capacity(n * 2);
        let mut bytes = Vec::with_capacity(n * 16);
        for s in &dir.segs {
            new_segs.push(Arc::clone(s));
            new_segs.push(Arc::clone(s));
            bytes.extend_from_slice(&s.region.off.to_le_bytes());
            bytes.extend_from_slice(&s.region.off.to_le_bytes());
        }
        self.dev.persist(ctx, new_region.off, &bytes);
        let old_region = dir.region;
        dir.region = new_region;
        dir.segs = new_segs;
        dir.depth += 1;
        // Commit the new directory in the superblock (depth + region),
        // then free the old directory region.
        let mut sb = [0u8; 24];
        sb[0..8].copy_from_slice(&(dir.depth as u64).to_le_bytes());
        sb[8..16].copy_from_slice(&new_region.off.to_le_bytes());
        sb[16..24].copy_from_slice(&new_region.len.to_le_bytes());
        self.dev.persist(ctx, self.sb_off + 8, &sb);
        self.dev.dealloc(old_region.off, old_region.len);
        Ok(())
    }
}

impl KvStore for PmemHash {
    fn name(&self) -> &'static str {
        "pmem-hash"
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        let meta = self.writers.append(ctx, key, value, false)?;
        if let Some(old) = self.insert(ctx, hash, meta.loc())? {
            let (_, hint) = kvlog::unpack_loc(old);
            self.log.note_dead((ENTRY_HEADER + hint) as u64);
        }
        Ok(())
    }

    fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        match self.lookup(ctx, hash) {
            None => Ok(false),
            Some(slot) => {
                let meta = self.log.read_entry(ctx, slot.location(), out)?;
                if meta.key != key {
                    return Err(KvError::Corrupt("log entry key mismatch"));
                }
                Ok(true)
            }
        }
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool> {
        ctx.charge(ctx.cost.op_overhead_ns + ctx.cost.hash_ns);
        let hash = hash64(key);
        self.writers.append(ctx, key, &[], true)?;
        loop {
            let seg = {
                let dir = self.dir.read();
                Arc::clone(&dir.segs[Self::dir_index(dir.depth, hash)])
            };
            let meta = seg.lock.lock();
            if meta.retired {
                continue;
            }
            return match self.probe(ctx, seg.region, hash) {
                Some((off, Some(_))) => {
                    self.dev.persist(ctx, off, &Slot::EMPTY.encode());
                    Ok(true)
                }
                _ => Ok(false),
            };
        }
    }

    fn sync(&self, ctx: &mut ThreadCtx) -> Result<()> {
        self.writers.flush_all(ctx)
    }

    fn dram_footprint(&self) -> u64 {
        // Directory cache: one pointer-sized entry per directory slot plus
        // a handle per distinct segment.
        let dir = self.dir.read();
        (dir.segs.len() * 8) as u64 + (self.segment_count() * 64) as u64
    }

    fn approx_len(&self) -> u64 {
        // Not tracked exactly; derive from log traffic is misleading, so
        // count occupied slots lazily (test/reporting use only).
        let dir = self.dir.read();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        let mut ctx = ThreadCtx::with_default_cost();
        for seg in &dir.segs {
            if !seen.insert(seg.region.off) {
                continue;
            }
            let slots = Self::seg_slots(&self.cfg) as usize;
            let mut data = vec![0u8; slots * SLOT_BYTES];
            self.dev.read_raw(seg.region.off + SEG_HEADER, &mut data);
            total += data
                .chunks_exact(SLOT_BYTES)
                .filter(|c| !Slot::decode(c).is_empty())
                .count() as u64;
        }
        let _ = &mut ctx;
        total
    }
}

impl CrashRecover for PmemHash {
    fn crash_and_recover(&mut self, ctx: &mut ThreadCtx) -> Result<()> {
        self.dev.crash();
        *self = PmemHash::recover(Arc::clone(&self.dev), self.cfg.clone(), ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PmemHash, ThreadCtx) {
        let dev = PmemDevice::optane(512 << 20);
        (
            PmemHash::create(dev, CcehConfig::default()).unwrap(),
            ThreadCtx::with_default_cost(),
        )
    }

    #[test]
    fn put_get_roundtrip_with_splits() {
        let (db, mut c) = setup();
        let n = 50_000u64;
        for k in 0..n {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        assert!(db.segment_count() > 4, "expected segment splits");
        let mut out = Vec::new();
        for k in 0..n {
            assert!(db.get(&mut c, k, &mut out).unwrap(), "key {k} missing");
            assert_eq!(out, k.to_le_bytes());
        }
        assert!(!db.get(&mut c, n + 5, &mut out).unwrap());
    }

    #[test]
    fn directory_doubles_under_load() {
        let (db, mut c) = setup();
        let before = db.global_depth();
        for k in 0..80_000u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        assert!(db.global_depth() > before);
    }

    #[test]
    fn overwrite_is_in_place() {
        let (db, mut c) = setup();
        db.put(&mut c, 1, b"a").unwrap();
        db.put(&mut c, 1, b"bb").unwrap();
        let mut out = Vec::new();
        assert!(db.get(&mut c, 1, &mut out).unwrap());
        assert_eq!(out, b"bb");
        assert!(db.log.dead_bytes() > 0);
    }

    #[test]
    fn delete_clears_slot() {
        let (db, mut c) = setup();
        for k in 0..100u64 {
            db.put(&mut c, k, b"v").unwrap();
        }
        assert!(db.delete(&mut c, 50).unwrap());
        let mut out = Vec::new();
        assert!(!db.get(&mut c, 50, &mut out).unwrap());
        assert!(db.get(&mut c, 51, &mut out).unwrap());
        assert!(!db.delete(&mut c, 50).unwrap());
    }

    #[test]
    fn small_in_place_writes_amplify() {
        let (db, mut c) = setup();
        db.device().stats().reset();
        for k in 0..2000u64 {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        db.sync(&mut c).unwrap();
        let s = db.device().stats().snapshot();
        // Index writes are 16B into 256B blocks: overall WA must be large.
        assert!(
            s.write_amplification() > 3.0,
            "expected heavy write amplification, got {}",
            s.write_amplification()
        );
        assert!(s.rmw_blocks > 1000, "in-place slot persists must RMW");
    }

    #[test]
    fn recovery_without_log_replay() {
        let dev = PmemDevice::optane(512 << 20);
        let cfg = CcehConfig::default();
        let db = PmemHash::create(Arc::clone(&dev), cfg.clone()).unwrap();
        let mut c = ThreadCtx::with_default_cost();
        for k in 0..30_000u64 {
            db.put(&mut c, k, &k.to_le_bytes()).unwrap();
        }
        db.sync(&mut c).unwrap();
        drop(db);
        dev.crash();
        let db2 = PmemHash::recover(Arc::clone(&dev), cfg, &mut c).unwrap();
        let mut out = Vec::new();
        for k in 0..30_000u64 {
            assert!(db2.get(&mut c, k, &mut out).unwrap(), "key {k} lost");
            assert_eq!(out, k.to_le_bytes());
        }
    }

    #[test]
    fn recovered_store_keeps_accepting_writes() {
        let dev = PmemDevice::optane(512 << 20);
        let cfg = CcehConfig::default();
        let db = PmemHash::create(Arc::clone(&dev), cfg.clone()).unwrap();
        let mut c = ThreadCtx::with_default_cost();
        for k in 0..5000u64 {
            db.put(&mut c, k, b"x").unwrap();
        }
        db.sync(&mut c).unwrap();
        drop(db);
        dev.crash();
        let db2 = PmemHash::recover(Arc::clone(&dev), cfg, &mut c).unwrap();
        for k in 5000..10_000u64 {
            db2.put(&mut c, k, b"y").unwrap();
        }
        let mut out = Vec::new();
        for k in 0..10_000u64 {
            assert!(db2.get(&mut c, k, &mut out).unwrap(), "key {k} missing");
        }
    }
}
