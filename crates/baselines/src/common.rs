//! Shared plumbing for the baseline stores.

use std::sync::Arc;

use kvapi::Result;
use kvlog::{EntryMeta, LogWriter, StorageLog};
use kvtables::{BloomFilter, Slot, SLOT_BYTES};
use parking_lot::Mutex;
use pmem_sim::{PRegion, PmemDevice, ThreadCtx};

/// A pool of per-thread log writers, indexed by `ThreadCtx::thread_id`.
pub(crate) struct WriterPool {
    writers: Vec<Mutex<LogWriter>>,
}

impl WriterPool {
    pub fn new(log: &std::sync::Arc<StorageLog>, n: usize) -> Self {
        Self {
            writers: (0..n.max(1)).map(|_| Mutex::new(log.writer())).collect(),
        }
    }

    pub fn append(
        &self,
        ctx: &mut ThreadCtx,
        key: u64,
        value: &[u8],
        tombstone: bool,
    ) -> Result<EntryMeta> {
        let mut w = self.writers[ctx.thread_id % self.writers.len()].lock();
        w.append(ctx, key, value, tombstone)
    }

    pub fn flush_all(&self, ctx: &mut ThreadCtx) -> Result<()> {
        for w in &self.writers {
            w.lock().flush(ctx)?;
        }
        Ok(())
    }
}

/// A key-sorted run of 16-byte slots on Pmem, as used by the key-sorted
/// LSM designs of §3.7 (NoveLSM/MatrixKV models).
///
/// Unlike the hash tables used elsewhere, lookups binary-search an in-DRAM
/// fence-pointer index (one first-hash per 256B block) and then read one
/// Pmem block; construction pays per-key sorting CPU and optionally builds
/// a Bloom filter.
pub(crate) struct SortedRun {
    region: PRegion,
    n: usize,
    /// First hash of each 256B block.
    fence: Vec<u64>,
    pub filter: Option<BloomFilter>,
}

const SLOTS_PER_BLOCK: usize = 256 / SLOT_BYTES;

impl SortedRun {
    /// Builds a run from `entries` (must be sorted by hash, deduplicated).
    /// Charges per-key merge/sort CPU and a sequential Pmem write; builds a
    /// filter when `bits_per_key > 0`.
    pub fn build(
        dev: &Arc<PmemDevice>,
        ctx: &mut ThreadCtx,
        entries: &[Slot],
        bits_per_key: usize,
    ) -> Result<Self> {
        debug_assert!(entries.windows(2).all(|w| w[0].hash <= w[1].hash));
        ctx.charge(entries.len() as u64 * ctx.cost.sort_per_key_ns);
        let bytes = ((entries.len() * SLOT_BYTES).div_ceil(256) * 256).max(256);
        let region = dev.alloc_region(bytes as u64)?;
        let mut fence = Vec::with_capacity(entries.len().div_ceil(SLOTS_PER_BLOCK));
        let mut buf = Vec::with_capacity(16 << 10);
        let mut written = 0u64;
        for (i, slot) in entries.iter().enumerate() {
            if i % SLOTS_PER_BLOCK == 0 {
                fence.push(slot.hash);
            }
            buf.extend_from_slice(&slot.encode());
            if buf.len() >= 16 << 10 {
                dev.write_nt(ctx, region.off + written, &buf);
                written += buf.len() as u64;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            dev.write_nt(ctx, region.off + written, &buf);
        }
        dev.fence(ctx);
        let filter = if bits_per_key > 0 {
            let mut f = BloomFilter::new(entries.len().max(1), bits_per_key);
            for s in entries {
                f.insert(ctx, s.hash);
            }
            Some(f)
        } else {
            None
        };
        Ok(Self {
            region,
            n: entries.len(),
            fence,
            filter,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Persistent bytes.
    #[allow(dead_code)]
    pub fn bytes(&self) -> u64 {
        self.region.len
    }

    /// DRAM bytes (fence pointers + filter).
    pub fn dram_bytes(&self) -> u64 {
        (self.fence.len() * 8) as u64 + self.filter.as_ref().map_or(0, |f| f.dram_bytes())
    }

    /// Looks up `hash`: binary search over the DRAM fence index, then one
    /// Pmem block read and an in-block scan.
    pub fn get(&self, dev: &PmemDevice, ctx: &mut ThreadCtx, hash: u64) -> Option<Slot> {
        if self.n == 0 {
            return None;
        }
        // Binary search the fence pointers (dependent DRAM accesses).
        let steps = (usize::BITS - self.fence.len().leading_zeros()) as u64;
        ctx.charge(steps * ctx.cost.dram_random_ns);
        let block = match self.fence.binary_search(&hash) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        self.get_in_block(dev, ctx, hash, block)
    }

    /// Looks up `hash` when an external hint already names the block
    /// (MatrixKV's cross-row hints): one DRAM hint access, one Pmem read.
    pub fn get_with_hint(&self, dev: &PmemDevice, ctx: &mut ThreadCtx, hash: u64) -> Option<Slot> {
        if self.n == 0 {
            return None;
        }
        ctx.charge(ctx.cost.dram_random_ns);
        let block = match self.fence.binary_search(&hash) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        self.get_in_block(dev, ctx, hash, block)
    }

    fn get_in_block(
        &self,
        dev: &PmemDevice,
        ctx: &mut ThreadCtx,
        hash: u64,
        block: usize,
    ) -> Option<Slot> {
        let start = block * SLOTS_PER_BLOCK;
        let count = SLOTS_PER_BLOCK.min(self.n - start);
        let mut buf = [0u8; 256];
        dev.read(
            ctx,
            self.region.off + (start * SLOT_BYTES) as u64,
            &mut buf[..count * SLOT_BYTES],
        );
        for i in 0..count {
            ctx.charge(ctx.cost.key_cmp_ns);
            let s = Slot::decode(&buf[i * SLOT_BYTES..(i + 1) * SLOT_BYTES]);
            if s.hash == hash {
                return Some(s);
            }
        }
        None
    }

    /// Streams every entry (sequential Pmem read), for compactions.
    pub fn iter_entries(&self, dev: &PmemDevice, ctx: &mut ThreadCtx) -> Vec<Slot> {
        let total = self.n * SLOT_BYTES;
        let mut out = Vec::with_capacity(self.n);
        let mut buf = vec![0u8; 64 << 10];
        let mut pos = 0usize;
        let mut first = true;
        while pos < total {
            let take = buf.len().min(total - pos);
            if first {
                dev.read(ctx, self.region.off + pos as u64, &mut buf[..take]);
                first = false;
            } else {
                dev.read_seq(ctx, self.region.off + pos as u64, &mut buf[..take]);
            }
            for chunk in buf[..take].chunks_exact(SLOT_BYTES) {
                out.push(Slot::decode(chunk));
            }
            pos += take;
        }
        out
    }

    /// Frees the persistent region.
    pub fn free(self, dev: &PmemDevice) {
        dev.dealloc(self.region.off, self.region.len);
    }
}

/// Merges hash-sorted slot lists, newest list first, deduplicating by hash
/// (the newest version wins). Charges per-entry merge CPU.
pub(crate) fn merge_sorted(ctx: &mut ThreadCtx, lists: &[Vec<Slot>]) -> Vec<Slot> {
    let total: usize = lists.iter().map(Vec::len).sum();
    ctx.charge(total as u64 * ctx.cost.sort_per_key_ns);
    let mut out: Vec<Slot> = Vec::with_capacity(total);
    let mut idx = vec![0usize; lists.len()];
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (li, list) in lists.iter().enumerate() {
            if idx[li] < list.len() {
                let h = list[idx[li]].hash;
                match best {
                    // Strictly smaller wins; on a tie the earlier (newer)
                    // list wins.
                    Some((_, bh)) if h >= bh => {}
                    _ => best = Some((li, h)),
                }
            }
        }
        let Some((li, h)) = best else { break };
        let slot = lists[li][idx[li]];
        // Advance every list past this hash (dedup: newest list won).
        for (lj, list) in lists.iter().enumerate() {
            while idx[lj] < list.len() && list[idx[lj]].hash == h {
                idx[lj] += 1;
            }
        }
        out.push(slot);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::hash64;

    #[test]
    fn sorted_run_roundtrip() {
        let dev = PmemDevice::optane(16 << 20);
        let mut ctx = ThreadCtx::with_default_cost();
        let mut entries: Vec<Slot> = (1..=500u64).map(|k| Slot::new(hash64(k), k)).collect();
        entries.sort_by_key(|s| s.hash);
        let run = SortedRun::build(&dev, &mut ctx, &entries, 10).unwrap();
        for k in 1..=500u64 {
            let s = run.get(&dev, &mut ctx, hash64(k)).expect("present");
            assert_eq!(s.loc, k);
        }
        assert!(run.get(&dev, &mut ctx, hash64(99_999)).is_none());
        let mut back = run.iter_entries(&dev, &mut ctx);
        back.sort_by_key(|s| s.hash);
        assert_eq!(back, entries);
    }

    #[test]
    fn merge_sorted_newest_wins() {
        let mut ctx = ThreadCtx::with_default_cost();
        let newer = vec![Slot::new(5, 50), Slot::new(10, 100)];
        let older = vec![Slot::new(5, 5), Slot::new(7, 7)];
        let merged = merge_sorted(&mut ctx, &[newer, older]);
        assert_eq!(
            merged,
            vec![Slot::new(5, 50), Slot::new(7, 7), Slot::new(10, 100)]
        );
    }

    #[test]
    fn merge_sorted_empty_lists() {
        let mut ctx = ThreadCtx::with_default_cost();
        assert!(merge_sorted(&mut ctx, &[vec![], vec![]]).is_empty());
    }
}
