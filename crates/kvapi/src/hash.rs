//! Key hashing.
//!
//! All stores place items by a 64-bit hash of the 8-byte key. A strong
//! finalizer (SplitMix64, the same mixer used by `xxhash`/`splitmix`) keeps
//! shard and slot selection uniform even for sequential key spaces, which is
//! what the paper's "keys are distributed evenly across these shards
//! according to their hash values" relies on.

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hashes an 8-byte key to its placement hash.
///
/// Bijective, so distinct keys never collide at the full 64-bit level —
/// collisions only arise from truncation to shard/slot counts, as with a
/// real hash function over 8-byte keys.
#[inline]
pub fn hash64(key: u64) -> u64 {
    mix64(key)
}

/// Derives the `i`-th independent hash for Bloom filters
/// (Kirsch–Mitzenmacher double hashing).
#[inline]
pub fn bloom_hash(key_hash: u64, i: u32) -> u64 {
    let h1 = key_hash;
    let h2 = mix64(key_hash.rotate_left(32));
    h1.wrapping_add((i as u64).wrapping_mul(h2 | 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), 42);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn sequential_keys_spread_over_shards() {
        // 10k sequential keys into 64 shards: every shard should get a
        // share within 3x of uniform.
        let shards = 64u64;
        let mut counts = vec![0u32; shards as usize];
        for k in 0..10_000u64 {
            counts[(hash64(k) % shards) as usize] += 1;
        }
        let expect = 10_000 / shards as u32;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 3 && c < expect * 3,
                "shard {i} got {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn bloom_hashes_differ_per_index() {
        let h = hash64(123);
        let a = bloom_hash(h, 0);
        let b = bloom_hash(h, 1);
        let c = bloom_hash(h, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }
}
