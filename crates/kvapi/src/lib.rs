//! Common API shared by ChameleonDB and the baseline stores.
//!
//! Every store in this workspace implements [`KvStore`] over a simulated
//! persistent-memory device, so the evaluation harnesses can drive them
//! interchangeably — the stores differ only in *where the index lives and
//! how it is organized*, exactly as in §3.2 of the paper.

use pmem_sim::{PmemError, ThreadCtx};

pub mod hash;

pub use hash::{bloom_hash, hash64, mix64};

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The backing device ran out of space.
    Pmem(PmemError),
    /// A persistent structure failed validation during recovery.
    Corrupt(&'static str),
    /// A fixed-capacity structure (e.g. a full table that cannot be
    /// compacted further) could not admit the item.
    Full(&'static str),
    /// The value is larger than the store's configured maximum.
    ValueTooLarge { len: usize, max: usize },
    /// The store does not implement this operation (e.g. a hash-only
    /// baseline asked for a range scan).
    Unsupported(&'static str),
}

impl From<PmemError> for KvError {
    fn from(e: PmemError) -> Self {
        KvError::Pmem(e)
    }
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Pmem(e) => write!(f, "device error: {e}"),
            KvError::Corrupt(what) => write!(f, "corrupt persistent state: {what}"),
            KvError::Full(what) => write!(f, "structure full: {what}"),
            KvError::ValueTooLarge { len, max } => {
                write!(f, "value of {len} bytes exceeds maximum {max}")
            }
            KvError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for KvError {}

/// Convenience alias for store results.
pub type Result<T> = std::result::Result<T, KvError>;

/// Space accounting of a value log with extent-lifecycle management.
///
/// Index *location words* (packed `{offset, size-hint}`; see `kvlog`) are
/// **repointable**: garbage collection may relocate an entry and rewrite
/// every index word referencing it, so a location word is only stable
/// while its reader holds an epoch pin. The entry a word points at is
/// always readable — GC quarantines emptied extents until every pinned
/// reader that could hold the old word has drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogSpaceStats {
    /// Bytes of entries appended and not yet reclaimed (live + dead).
    pub appended_bytes: u64,
    /// Bytes still referenced by some index structure.
    pub live_bytes: u64,
    /// Bytes superseded by overwrites/deletes, awaiting reclamation.
    pub dead_bytes: u64,
    /// Bytes occupied by in-use extents (what space amplification bounds:
    /// `footprint / live <= target`).
    pub footprint_bytes: u64,
}

impl LogSpaceStats {
    /// Space amplification as parts-per-thousand (`u64::MAX` when no live
    /// bytes but a nonzero footprint remains).
    pub fn space_amp_milli(&self) -> u64 {
        match self
            .footprint_bytes
            .saturating_mul(1000)
            .checked_div(self.live_bytes)
        {
            Some(amp) => amp,
            None if self.footprint_bytes == 0 => 1000,
            None => u64::MAX,
        }
    }

    /// Live fraction of appended bytes as parts-per-thousand.
    pub fn live_ratio_milli(&self) -> u64 {
        self.live_bytes
            .saturating_mul(1000)
            .checked_div(self.appended_bytes)
            .unwrap_or(1000)
    }
}

/// A key-value store over simulated persistent memory.
///
/// Keys are 8 bytes (the paper's key size); all stores place items by the
/// key's 64-bit hash. Values are opaque bytes stored in a persistent log.
/// Range scans ([`KvStore::scan`]) are optional: the paper excludes
/// YCSB-E because its structures are hash-keyed, so hash-only baselines
/// keep the default [`KvError::Unsupported`] implementation, while
/// ChameleonDB serves scans from a volatile ordered index over live keys
/// (the `kvorder` crate).
///
/// Implementations are internally synchronized: `&self` methods may be
/// called from many threads, each passing its own [`ThreadCtx`].
pub trait KvStore: Send + Sync {
    /// Short name used in harness output (e.g. `"chameleondb"`).
    fn name(&self) -> &'static str;

    /// Inserts or updates `key`.
    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()>;

    /// Looks up `key`; appends the value into `out` and returns `true` if
    /// present. `out` is cleared first.
    fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool>;

    /// Removes `key`; returns `true` if it was present.
    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool>;

    /// Range scan: up to `limit` live keys `>= start_key`, ascending.
    ///
    /// Results never include tombstoned or shadowed versions — every
    /// candidate is resolved through the store's newest-version probe.
    /// Stores without an ordered index keep this default.
    fn scan(&self, _ctx: &mut ThreadCtx, _start_key: u64, _limit: usize) -> Result<Vec<u64>> {
        Err(KvError::Unsupported("range scan"))
    }

    /// Forces volatile write buffers (e.g. log batch buffers) to media so
    /// that everything previously accepted is crash-recoverable.
    fn sync(&self, ctx: &mut ThreadCtx) -> Result<()>;

    /// Bytes of DRAM currently used by volatile structures (index tables,
    /// MemTables, filters, caches) — the "DRAM footprint" column of Table 4.
    fn dram_footprint(&self) -> u64;

    /// Approximate number of live items.
    fn approx_len(&self) -> u64;
}

/// Crash-recovery support (the "restart time" column of Table 4).
pub trait CrashRecover {
    /// Simulates a power failure (dropping all volatile state and every
    /// un-fenced line on the device) and then rebuilds the store from the
    /// durable media alone. On return the store serves requests again; the
    /// simulated time the rebuild consumed is charged to `ctx`.
    fn crash_and_recover(&mut self, ctx: &mut ThreadCtx) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = KvError::ValueTooLarge { len: 10, max: 4 };
        assert!(e.to_string().contains("10"));
        let e = KvError::Corrupt("manifest magic");
        assert!(e.to_string().contains("manifest magic"));
    }

    #[test]
    fn pmem_error_converts() {
        let p = PmemError::OutOfMemory {
            requested: 1,
            available: 0,
        };
        let k: KvError = p.into();
        assert!(matches!(k, KvError::Pmem(_)));
    }
}
