//! Epoch-based snapshot publication: lock-free readers over
//! atomically-republished immutable views (RCU / ArcSwap style).
//!
//! The pattern this crate serves: a writer holds some mutable state behind
//! a mutex and, at every *structural transition*, publishes an immutable
//! snapshot (`Arc<T>`) of the parts readers need. Readers never touch the
//! mutex — they pin an epoch, load the current snapshot pointer with one
//! atomic load, probe it, and unpin. Retired snapshots are reclaimed only
//! once every reader that could still hold them has unpinned.
//!
//! Two pieces:
//!
//! * [`EpochDomain`] — a fixed array of per-reader pin slots plus a global
//!   epoch counter. Pinning records the current epoch in the reader's
//!   slot; publication advances the epoch; a retired snapshot is freed
//!   once every slot is either unpinned or pinned at a *later* epoch.
//! * [`ViewCell`] — an atomic `Arc<T>` holder. `load` is one
//!   `AtomicPtr` load (no reference-count traffic at all); `publish`
//!   swaps the pointer, retires the old snapshot into a writer-side
//!   garbage list, and collects whatever has quiesced.
//!
//! This is deliberately simpler than crossbeam-epoch: publications are
//! rare (memtable freeze, compaction commit, …) and always serialized by
//! the writer's own mutex, so the garbage list can be a plain
//! mutex-guarded vector; only the reader side must be wait-free.
//!
//! ## Why not `Mutex<Arc<T>>` or `RwLock<Arc<T>>`?
//!
//! Cloning an `Arc` under any lock puts every reader on the same
//! contended cache line (the lock word *and* the refcount). On Optane-era
//! hardware the read itself costs ~300ns, so cross-core line ping-pong on
//! the index hot path is a first-order cost. Here a read is: one relaxed
//! slot store, one `SeqCst` pointer load, plain dereferences, one relaxed
//! slot store — no shared line is written by more than one reader.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of low bits of a pin slot used for the nested-pin count; the
/// high bits hold the pinned epoch.
const COUNT_BITS: u32 = 16;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

#[inline]
fn pack(epoch: u64, count: u64) -> u64 {
    debug_assert!(count <= COUNT_MASK);
    (epoch << COUNT_BITS) | count
}

#[inline]
fn slot_epoch(v: u64) -> u64 {
    v >> COUNT_BITS
}

#[inline]
fn slot_count(v: u64) -> u64 {
    v & COUNT_MASK
}

/// Pads each pin slot to its own cache line so readers on different
/// cores never write-share a line.
#[repr(align(64))]
#[derive(Default)]
struct PinSlot(AtomicU64);

/// A reclamation domain: one global epoch plus a fixed set of reader pin
/// slots.
///
/// Readers identify themselves with an arbitrary `usize` id (a worker
/// thread id); ids are mapped onto slots by modulo. Two readers sharing a
/// slot is *safe* — the slot carries a pin count and keeps the oldest
/// pinned epoch — it merely delays reclamation while their pins overlap,
/// so size the domain for the expected worker count.
#[derive(Debug)]
pub struct EpochDomain {
    /// Monotonic publication epoch. Starts at 1 so an unpinned slot can
    /// be the all-zero value.
    global: AtomicU64,
    slots: Box<[PinSlot]>,
}

impl std::fmt::Debug for PinSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.load(Ordering::Relaxed))
    }
}

impl EpochDomain {
    /// Creates a domain with `readers` pin slots (minimum 1).
    pub fn new(readers: usize) -> Self {
        Self {
            global: AtomicU64::new(1),
            slots: (0..readers.max(1)).map(|_| PinSlot::default()).collect(),
        }
    }

    /// Number of pin slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Pins reader `id`, returning a guard that unpins on drop. While the
    /// guard lives, every snapshot loaded from a [`ViewCell`] of this
    /// domain stays valid.
    ///
    /// Wait-free for a private slot; a CAS loop only contends when two
    /// readers share a slot by id collision.
    pub fn pin(&self, id: usize) -> Pin<'_> {
        let idx = id % self.slots.len();
        let slot = &self.slots[idx].0;
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let new = if slot_count(cur) == 0 {
                // SeqCst: this store must be ordered before the guard's
                // subsequent pointer loads *and* be visible to a
                // publisher's slot scan — see `ViewCell::publish`.
                pack(self.global.load(Ordering::SeqCst), 1)
            } else {
                // Slot shared with an in-flight reader: keep its (older)
                // epoch so whatever it may hold stays protected.
                pack(slot_epoch(cur), slot_count(cur) + 1)
            };
            match slot.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::Relaxed) {
                Ok(_) => return Pin { domain: self, idx },
                Err(v) => cur = v,
            }
        }
    }

    /// Advances the global epoch; returns the epoch that was current
    /// before the advance (the retire epoch of whatever was just
    /// unpublished).
    fn advance(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst)
    }

    /// Whether garbage retired at `epoch` can be freed: every slot is
    /// either unpinned or was pinned strictly after the retire point.
    fn quiesced(&self, epoch: u64) -> bool {
        self.slots.iter().all(|s| {
            let v = s.0.load(Ordering::SeqCst);
            slot_count(v) == 0 || slot_epoch(v) > epoch
        })
    }

    /// Starts a grace period: advances the global epoch and returns a
    /// token for [`try_sync`](Self::try_sync). Any reader that pins after
    /// this call observes the advanced epoch (the pin's `SeqCst` load
    /// synchronizes with the advance), so once the token quiesces, no
    /// reader can still hold state loaded before `begin_sync` returned.
    pub fn begin_sync(&self) -> u64 {
        self.advance()
    }

    /// Whether the grace period started by [`begin_sync`](Self::begin_sync)
    /// has expired: every pin taken before it has dropped.
    pub fn try_sync(&self, token: u64) -> bool {
        self.quiesced(token)
    }

    /// Blocks until every pin taken before this call has dropped — the
    /// quarantine primitive GC uses before reusing relocated-away log
    /// space. Spin-yields; callers are maintenance paths, never readers.
    pub fn synchronize(&self) {
        let token = self.advance();
        while !self.quiesced(token) {
            std::thread::yield_now();
        }
    }
}

/// An active reader pin (see [`EpochDomain::pin`]).
#[must_use = "a pin protects loads only while it is held"]
pub struct Pin<'d> {
    domain: &'d EpochDomain,
    idx: usize,
}

impl Pin<'_> {
    /// The domain this pin protects loads in. Structures that accept a
    /// caller-supplied pin (e.g. an epoch-safe index) use this to assert
    /// the pin actually guards *their* reclamation domain, the same check
    /// [`ViewCell::load`] performs.
    pub fn domain(&self) -> &EpochDomain {
        self.domain
    }
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        let slot = &self.domain.slots[self.idx].0;
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let new = if slot_count(cur) <= 1 {
                0
            } else {
                pack(slot_epoch(cur), slot_count(cur) - 1)
            };
            match slot.compare_exchange_weak(cur, new, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(v) => cur = v,
            }
        }
    }
}

/// An atomically-publishable `Arc<T>` snapshot cell.
///
/// One writer (or externally serialized writers) republishes with
/// [`publish`](Self::publish); any number of readers load the current
/// snapshot with [`load`](Self::load) under an [`EpochDomain`] pin.
/// Retired snapshots are dropped once no pin from before their
/// replacement remains — including any `Drop` side effects they carry
/// (e.g. freeing persistent-memory regions of compacted-away tables).
pub struct ViewCell<T> {
    /// Always a valid `Arc::into_raw` pointer; never null.
    ptr: AtomicPtr<T>,
    domain: Arc<EpochDomain>,
    /// Retired snapshots, each tagged with its retire epoch. Only
    /// publishers touch this (readers never lock).
    retired: Mutex<Vec<(u64, *const T)>>,
}

// SAFETY: the raw pointers are Arc-managed `T`s handed between threads
// only under the epoch protocol; `T: Send + Sync` makes that sound.
unsafe impl<T: Send + Sync> Send for ViewCell<T> {}
unsafe impl<T: Send + Sync> Sync for ViewCell<T> {}

impl<T> ViewCell<T> {
    /// Creates a cell holding `initial`.
    pub fn new(domain: Arc<EpochDomain>, initial: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            domain,
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The cell's reclamation domain.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// Loads the current snapshot: one atomic pointer load, no
    /// reference-count traffic. The returned borrow is valid for the
    /// shorter of the pin and the cell.
    ///
    /// The pin must come from this cell's [`EpochDomain`].
    pub fn load<'a>(&'a self, pin: &'a Pin<'_>) -> &'a T {
        assert!(
            std::ptr::eq(pin.domain, &*self.domain),
            "pin is from a different EpochDomain"
        );
        // SAFETY: `ptr` is always a live Arc::into_raw pointer. A
        // publisher that swaps it out cannot free it while our pin slot
        // holds an epoch <= its retire epoch; the SeqCst pin-store /
        // ptr-load pair here and the SeqCst swap / slot-scan pair in
        // `publish` make that mutual visibility total (see module docs).
        unsafe { &*self.ptr.load(Ordering::SeqCst) }
    }

    /// Like [`load`](Self::load) but returns a clone of the underlying
    /// `Arc`, which stays valid after the pin is dropped. Costs refcount
    /// traffic — for occasional consumers (tests, maintenance), not the
    /// hot read path.
    pub fn load_arc(&self, pin: &Pin<'_>) -> Arc<T> {
        let p = self.load(pin) as *const T;
        // SAFETY: `p` is a live Arc pointer protected by `pin`.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }

    /// Publishes `new` as the current snapshot, retires the previous one,
    /// and frees any retired snapshot no reader can still hold.
    pub fn publish(&self, new: Arc<T>) {
        let old = self
            .ptr
            .swap(Arc::into_raw(new) as *mut T, Ordering::SeqCst);
        let retire_epoch = self.domain.advance();
        let mut retired = self.retired.lock();
        retired.push((retire_epoch, old));
        Self::collect_locked(&self.domain, &mut retired);
    }

    /// Frees whatever retired snapshots have quiesced. Publishing already
    /// does this; exposed for idle-time reclamation and tests.
    pub fn collect(&self) {
        Self::collect_locked(&self.domain, &mut self.retired.lock());
    }

    /// Retired snapshots not yet reclaimed (diagnostics/tests).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }

    fn collect_locked(domain: &EpochDomain, retired: &mut Vec<(u64, *const T)>) {
        retired.retain(|&(epoch, ptr)| {
            if domain.quiesced(epoch) {
                // SAFETY: no pin from before this snapshot's retirement
                // remains, so no reader can hold a borrow into it.
                drop(unsafe { Arc::from_raw(ptr) });
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for ViewCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no reader can outlive a `&self` borrow of the
        // cell, so everything can be released unconditionally.
        drop(unsafe { Arc::from_raw(self.ptr.load(Ordering::SeqCst)) });
        for (_, ptr) in self.retired.get_mut().drain(..) {
            drop(unsafe { Arc::from_raw(ptr) });
        }
    }
}

impl<T> std::fmt::Debug for ViewCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewCell")
            .field("retired", &self.retired.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts drops so tests can observe reclamation.
    struct Tracked {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Tracked> {
        Arc::new(Tracked {
            value,
            drops: Arc::clone(drops),
        })
    }

    #[test]
    fn load_sees_latest_publish() {
        let domain = Arc::new(EpochDomain::new(4));
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
        {
            let pin = domain.pin(0);
            assert_eq!(cell.load(&pin).value, 1);
        }
        cell.publish(tracked(2, &drops));
        let pin = domain.pin(0);
        assert_eq!(cell.load(&pin).value, 2);
    }

    #[test]
    fn unpinned_publish_reclaims_immediately() {
        let domain = Arc::new(EpochDomain::new(4));
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
        cell.publish(tracked(2, &drops));
        assert_eq!(drops.load(Ordering::SeqCst), 1, "old view freed at publish");
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation_until_unpin() {
        let domain = Arc::new(EpochDomain::new(4));
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
        let pin = domain.pin(0);
        let view = cell.load(&pin);
        cell.publish(tracked(2, &drops));
        // Reader still pinned from before the publish: view 1 must live.
        assert_eq!(view.value, 1);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(cell.retired_len(), 1);
        drop(pin);
        cell.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn pin_after_publish_does_not_block_reclamation() {
        let domain = Arc::new(EpochDomain::new(4));
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
        cell.publish(tracked(2, &drops));
        // A pin taken *after* the publish sees epoch > retire epoch.
        let _pin = domain.pin(0);
        cell.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sync_tokens_track_pins() {
        let domain = EpochDomain::new(4);
        let early = domain.pin(0);
        let token = domain.begin_sync();
        assert!(!domain.try_sync(token), "pre-advance pin must block");
        // Pins taken after begin_sync never block the grace period.
        let late = domain.pin(1);
        drop(early);
        assert!(domain.try_sync(token));
        drop(late);
        domain.synchronize(); // no pins: returns immediately
    }

    #[test]
    fn synchronize_waits_for_straggling_reader() {
        let domain = Arc::new(EpochDomain::new(4));
        let released = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&domain);
        let r = Arc::clone(&released);
        let pinned = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&pinned);
        let reader = std::thread::spawn(move || {
            let pin = d.pin(2);
            p.store(1, Ordering::SeqCst);
            while r.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            drop(pin);
        });
        while pinned.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let token = domain.begin_sync();
        assert!(!domain.try_sync(token));
        released.store(1, Ordering::SeqCst);
        domain.synchronize();
        assert!(domain.try_sync(token));
        reader.join().unwrap();
    }

    #[test]
    fn shared_slot_keeps_oldest_epoch() {
        let domain = Arc::new(EpochDomain::new(1)); // every id shares slot 0
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
        let early = domain.pin(0);
        cell.publish(tracked(2, &drops));
        let late = domain.pin(7); // same slot, newer epoch — must not unblock
        drop(late);
        cell.collect();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "overlapping shared-slot pin must keep the old view alive"
        );
        drop(early);
        cell.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn load_arc_outlives_the_pin() {
        let domain = Arc::new(EpochDomain::new(2));
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
        let held = {
            let pin = domain.pin(0);
            cell.load_arc(&pin)
        };
        cell.publish(tracked(2, &drops));
        cell.collect();
        // The view was reclaimed from the cell's perspective, but the Arc
        // clone keeps the payload alive.
        assert_eq!(held.value, 1);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(held);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cell_drop_releases_current_and_retired() {
        let domain = Arc::new(EpochDomain::new(2));
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = ViewCell::new(Arc::clone(&domain), tracked(1, &drops));
            let _forever = domain.pin(0); // never unpinned before cell drop
            cell.publish(tracked(2, &drops));
            assert_eq!(drops.load(Ordering::SeqCst), 0);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "different EpochDomain")]
    fn cross_domain_pin_is_rejected() {
        let d1 = Arc::new(EpochDomain::new(2));
        let d2 = Arc::new(EpochDomain::new(2));
        let cell = ViewCell::new(d1, Arc::new(7u64));
        let pin = d2.pin(0);
        let _ = cell.load(&pin);
    }

    /// Readers hammer loads while a writer republishes; every loaded view
    /// must be internally consistent (the two halves always match) and
    /// nothing may crash or leak.
    #[test]
    fn concurrent_publish_and_load_stress() {
        struct Pair {
            a: u64,
            b: u64,
            _guard: Arc<AtomicUsize>,
        }
        impl Drop for Pair {
            fn drop(&mut self) {
                self._guard.fetch_add(1, Ordering::SeqCst);
            }
        }

        let domain = Arc::new(EpochDomain::new(8));
        let drops = Arc::new(AtomicUsize::new(0));
        let make = |v: u64, drops: &Arc<AtomicUsize>| {
            Arc::new(Pair {
                a: v,
                b: v.wrapping_mul(0x9E37_79B9),
                _guard: Arc::clone(drops),
            })
        };
        let cell = ViewCell::new(Arc::clone(&domain), make(0, &drops));
        let publishes = 20_000u64;

        std::thread::scope(|s| {
            for reader in 0..6usize {
                let cell = &cell;
                let domain = &domain;
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..200_000 {
                        let pin = domain.pin(reader);
                        let v = cell.load(&pin);
                        assert_eq!(v.b, v.a.wrapping_mul(0x9E37_79B9), "torn view");
                        assert!(v.a >= last, "snapshot went backwards");
                        last = v.a;
                    }
                });
            }
            let cell = &cell;
            let drops2 = Arc::clone(&drops);
            s.spawn(move || {
                for i in 1..=publishes {
                    cell.publish(make(i, &drops2));
                }
            });
        });
        cell.collect();
        // Everything but the current view must have been dropped.
        assert_eq!(drops.load(Ordering::SeqCst) as u64, publishes);
        assert_eq!(cell.retired_len(), 0);
    }
}
