//! Multi-threaded workload driver over any [`kvapi::KvStore`].

use kvapi::KvStore;
use pmem_sim::{CostModel, Histogram, ThreadCtx};

use crate::{KeyChooser, Workload};

/// The kind of one executed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Get,
    Put,
    ReadModifyWrite,
    /// Range scan (YCSB-E): Zipfian start key, uniform length.
    Scan,
}

/// Driver configuration for one measured run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads (each gets its own [`ThreadCtx`] and clock).
    pub threads: usize,
    /// Total operations across all threads.
    pub ops: u64,
    /// Records already loaded (the request key space).
    pub record_count: u64,
    /// Value size for puts.
    pub value_size: usize,
    /// Workload mix (Table 5).
    pub workload: Workload,
    /// Base RNG seed (thread `t` uses `seed + t`).
    pub seed: u64,
    /// First key for unique-key inserts (`Load`, and YCSB-E's insert
    /// half — set it to `record_count` there so fresh keys extend the
    /// loaded space instead of overwriting it).
    pub insert_start: u64,
    /// Simulated-time bucket for the throughput timeline; 0 disables.
    pub timeline_bucket_ns: u64,
    /// Largest scan length (YCSB-E draws uniformly from `[1, this]`).
    pub scan_max_len: usize,
}

impl RunConfig {
    /// A convenience constructor for the common case.
    pub fn new(workload: Workload, threads: usize, ops: u64, record_count: u64) -> Self {
        Self {
            threads: threads.max(1),
            ops,
            record_count: record_count.max(1),
            value_size: 8,
            workload,
            seed: 0x59_43_53_42,
            insert_start: if workload == Workload::E {
                record_count.max(1)
            } else {
                0
            },
            timeline_bucket_ns: 0,
            scan_max_len: 100,
        }
    }
}

/// Results of one measured run, in simulated time.
#[derive(Debug)]
pub struct RunResult {
    /// Operations executed.
    pub ops: u64,
    /// Max over threads of per-thread simulated time (the makespan).
    pub elapsed_ns: u64,
    /// Sum over threads of per-thread throughput (ops/ns) — the aggregate
    /// a closed-loop multi-threaded benchmark reports. Less sensitive than
    /// the makespan to one thread absorbing a lumpy compaction.
    pub sum_rate_ops_per_ns: f64,
    /// Latency histogram of read operations.
    pub read_hist: Histogram,
    /// Latency histogram of write operations (puts; RMW counts the whole
    /// read+write pair).
    pub write_hist: Histogram,
    /// Latency histogram of range scans (YCSB-E).
    pub scan_hist: Histogram,
    /// Total keys returned across all scans.
    pub scanned_keys: u64,
    /// Gets that found no value.
    pub not_found: u64,
    /// `(bucket_start_ns, ops_completed)` series when a timeline bucket
    /// was configured.
    pub timeline: Vec<(u64, u64)>,
}

impl RunResult {
    /// Aggregate throughput in million operations per simulated second
    /// (sum of per-thread rates).
    pub fn mops(&self) -> f64 {
        self.sum_rate_ops_per_ns * 1e3
    }

    /// Makespan-based throughput (total ops / slowest thread).
    pub fn mops_makespan(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e3 / self.elapsed_ns as f64
        }
    }
}

struct ThreadOutcome {
    read_hist: Histogram,
    write_hist: Histogram,
    scan_hist: Histogram,
    scanned_keys: u64,
    not_found: u64,
    elapsed_ns: u64,
    timeline: Vec<(u64, u64)>,
}

/// Runs `cfg` against `store` and collects simulated-time results.
///
/// The caller is responsible for loading `record_count` records first (for
/// non-`Load` workloads) and for declaring the device's active thread
/// count. Worker `t` receives `ThreadCtx::for_thread(cost, t)`, so stores
/// pick uncontended per-thread log writers.
///
/// # Panics
///
/// Panics if any store operation fails — harnesses treat store errors as
/// fatal configuration bugs.
pub fn run<S: KvStore + ?Sized>(store: &S, cfg: &RunConfig) -> RunResult {
    let cost = std::sync::Arc::new(CostModel::default());
    let per_thread = cfg.ops / cfg.threads as u64;
    let outcomes: Vec<ThreadOutcome> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let cost = std::sync::Arc::clone(&cost);
                s.spawn(move |_| run_thread(store, cfg, t, per_thread, cost))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("driver scope");

    let mut read_hist = Histogram::new();
    let mut write_hist = Histogram::new();
    let mut scan_hist = Histogram::new();
    let mut scanned_keys = 0;
    let mut not_found = 0;
    let mut elapsed = 0;
    let mut sum_rate = 0.0;
    let mut timeline_map: std::collections::BTreeMap<u64, u64> = Default::default();
    for o in outcomes {
        read_hist.merge(&o.read_hist);
        write_hist.merge(&o.write_hist);
        scan_hist.merge(&o.scan_hist);
        scanned_keys += o.scanned_keys;
        not_found += o.not_found;
        elapsed = elapsed.max(o.elapsed_ns);
        if o.elapsed_ns > 0 {
            sum_rate += per_thread as f64 / o.elapsed_ns as f64;
        }
        for (bucket, n) in o.timeline {
            *timeline_map.entry(bucket).or_default() += n;
        }
    }
    RunResult {
        ops: per_thread * cfg.threads as u64,
        elapsed_ns: elapsed,
        sum_rate_ops_per_ns: sum_rate,
        read_hist,
        write_hist,
        scan_hist,
        scanned_keys,
        not_found,
        timeline: timeline_map.into_iter().collect(),
    }
}

fn run_thread<S: KvStore + ?Sized>(
    store: &S,
    cfg: &RunConfig,
    t: usize,
    ops: u64,
    cost: std::sync::Arc<CostModel>,
) -> ThreadOutcome {
    let mut ctx = ThreadCtx::for_thread(cost, t);
    let mut chooser = KeyChooser::new(
        cfg.workload.distribution(),
        cfg.record_count,
        cfg.seed + t as u64,
    );
    let mut mix_state = kvapi::mix64(cfg.seed ^ (t as u64) << 32) | 1;
    let mut next_mix = move || {
        mix_state = kvapi::mix64(mix_state.wrapping_add(0x9E37_79B9));
        mix_state
    };
    let value = vec![0xC5u8; cfg.value_size];
    let mut out = Vec::with_capacity(cfg.value_size.max(8));
    let mut read_hist = Histogram::new();
    let mut write_hist = Histogram::new();
    let mut scan_hist = Histogram::new();
    let mut scanned_keys = 0u64;
    let mut not_found = 0u64;
    let mut timeline: std::collections::BTreeMap<u64, u64> = Default::default();

    for i in 0..ops {
        let start = ctx.clock.now();
        match pick_op(cfg.workload, next_mix()) {
            OpKind::Put => {
                let key = if cfg.workload.inserts_new_keys() {
                    // Unique keys, partitioned across threads.
                    cfg.insert_start + i * cfg.threads as u64 + t as u64
                } else {
                    chooser.next_key()
                };
                store.put(&mut ctx, key, &value).expect("put failed");
                write_hist.record(ctx.clock.since(start));
            }
            OpKind::Get => {
                let key = chooser.next_key();
                if !store.get(&mut ctx, key, &mut out).expect("get failed") {
                    not_found += 1;
                }
                read_hist.record(ctx.clock.since(start));
            }
            OpKind::ReadModifyWrite => {
                let key = chooser.next_key();
                if !store.get(&mut ctx, key, &mut out).expect("get failed") {
                    not_found += 1;
                }
                store.put(&mut ctx, key, &value).expect("put failed");
                write_hist.record(ctx.clock.since(start));
            }
            OpKind::Scan => {
                let start_key = chooser.next_key();
                let len = 1 + (next_mix() as usize) % cfg.scan_max_len.max(1);
                let keys = store.scan(&mut ctx, start_key, len).expect("scan failed");
                scanned_keys += keys.len() as u64;
                scan_hist.record(ctx.clock.since(start));
            }
        }
        if let Some(bucket) = ctx
            .clock
            .now()
            .checked_div(cfg.timeline_bucket_ns)
            .filter(|_| cfg.timeline_bucket_ns > 0)
        {
            *timeline.entry(bucket * cfg.timeline_bucket_ns).or_default() += 1;
        }
    }
    ThreadOutcome {
        read_hist,
        write_hist,
        scan_hist,
        scanned_keys,
        not_found,
        elapsed_ns: ctx.clock.now(),
        timeline: timeline.into_iter().collect(),
    }
}

fn pick_op(workload: Workload, mix: u64) -> OpKind {
    let read_frac = workload.read_fraction();
    let u = (mix >> 11) as f64 / (1u64 << 53) as f64;
    if u < read_frac {
        if workload.is_scan() {
            OpKind::Scan
        } else {
            OpKind::Get
        }
    } else if workload.is_rmw() {
        OpKind::ReadModifyWrite
    } else {
        OpKind::Put
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::Result;
    use parking_lot::Mutex;
    use pmem_sim::ThreadCtx;

    /// An in-memory stub store with a fixed per-op simulated cost.
    struct StubStore {
        map: Mutex<std::collections::HashMap<u64, Vec<u8>>>,
        op_ns: u64,
    }

    impl KvStore for StubStore {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn put(&self, ctx: &mut ThreadCtx, key: u64, value: &[u8]) -> Result<()> {
            ctx.charge(self.op_ns);
            self.map.lock().insert(key, value.to_vec());
            Ok(())
        }
        fn get(&self, ctx: &mut ThreadCtx, key: u64, out: &mut Vec<u8>) -> Result<bool> {
            ctx.charge(self.op_ns);
            out.clear();
            match self.map.lock().get(&key) {
                Some(v) => {
                    out.extend_from_slice(v);
                    Ok(true)
                }
                None => Ok(false),
            }
        }
        fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Result<bool> {
            ctx.charge(self.op_ns);
            Ok(self.map.lock().remove(&key).is_some())
        }
        fn scan(&self, ctx: &mut ThreadCtx, start_key: u64, limit: usize) -> Result<Vec<u64>> {
            ctx.charge(self.op_ns);
            let mut keys: Vec<u64> = self
                .map
                .lock()
                .keys()
                .copied()
                .filter(|&k| k >= start_key)
                .collect();
            keys.sort_unstable();
            keys.truncate(limit);
            Ok(keys)
        }
        fn sync(&self, _ctx: &mut ThreadCtx) -> Result<()> {
            Ok(())
        }
        fn dram_footprint(&self) -> u64 {
            0
        }
        fn approx_len(&self) -> u64 {
            self.map.lock().len() as u64
        }
    }

    fn stub(op_ns: u64) -> StubStore {
        StubStore {
            map: Mutex::new(Default::default()),
            op_ns,
        }
    }

    #[test]
    fn load_inserts_unique_keys() {
        let s = stub(100);
        let cfg = RunConfig::new(Workload::Load, 4, 1000, 1);
        let r = run(&s, &cfg);
        assert_eq!(r.ops, 1000);
        assert_eq!(s.approx_len(), 1000, "all keys must be distinct");
        assert_eq!(r.read_hist.count(), 0);
        assert_eq!(r.write_hist.count(), 1000);
    }

    #[test]
    fn throughput_scales_with_threads_for_independent_ops() {
        let s = stub(1000);
        let r1 = run(&s, &RunConfig::new(Workload::Load, 1, 4000, 1));
        let r4 = run(&s, &RunConfig::new(Workload::Load, 4, 4000, 1));
        // Same total ops, four clocks in parallel: ~4x the throughput.
        assert!(r4.mops() > 3.0 * r1.mops());
    }

    #[test]
    fn ycsb_c_is_all_reads_on_loaded_store() {
        let s = stub(50);
        run(&s, &RunConfig::new(Workload::Load, 1, 1000, 1));
        let mut cfg = RunConfig::new(Workload::C, 2, 2000, 1000);
        cfg.seed = 9;
        let r = run(&s, &cfg);
        assert_eq!(r.write_hist.count(), 0);
        assert_eq!(r.read_hist.count(), 2000);
        assert_eq!(r.not_found, 0, "all requested keys were loaded");
    }

    #[test]
    fn ycsb_a_mixes_roughly_half_and_half() {
        let s = stub(50);
        run(&s, &RunConfig::new(Workload::Load, 1, 1000, 1));
        let r = run(&s, &RunConfig::new(Workload::A, 1, 10_000, 1000));
        let reads = r.read_hist.count() as f64;
        let writes = r.write_hist.count() as f64;
        assert!((reads / (reads + writes) - 0.5).abs() < 0.05);
    }

    #[test]
    fn rmw_counts_as_write_with_double_cost() {
        let s = stub(100);
        run(&s, &RunConfig::new(Workload::Load, 1, 100, 1));
        let r = run(&s, &RunConfig::new(Workload::F, 1, 1000, 100));
        // RMW latency includes both halves: minimum 200ns in the stub.
        assert!(r.write_hist.min() >= 200);
    }

    #[test]
    fn ycsb_e_scans_dominate_and_inserts_extend_the_key_space() {
        let s = stub(50);
        run(&s, &RunConfig::new(Workload::Load, 1, 1000, 1));
        assert_eq!(s.approx_len(), 1000);
        let r = run(&s, &RunConfig::new(Workload::E, 2, 4000, 1000));
        let scans = r.scan_hist.count() as f64;
        let inserts = r.write_hist.count() as f64;
        assert_eq!(r.read_hist.count(), 0, "YCSB-E reads are scans, not gets");
        assert!((scans / (scans + inserts) - 0.95).abs() < 0.02);
        assert!(r.scanned_keys > 0, "scans over a loaded store return keys");
        // Inserts land above the loaded space (insert_start defaults to
        // record_count for E) and never overwrite it.
        assert!(s.approx_len() > 1000);
        assert!(s.map.lock().keys().any(|&k| k >= 1000));
    }

    #[test]
    fn timeline_buckets_cover_the_run() {
        let s = stub(1000);
        let mut cfg = RunConfig::new(Workload::Load, 2, 2000, 1);
        cfg.timeline_bucket_ns = 100_000;
        let r = run(&s, &cfg);
        let total: u64 = r.timeline.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 2000);
        assert!(r.timeline.len() > 1);
    }
}
