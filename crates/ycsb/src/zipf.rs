//! Zipfian rank generator (Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases" — the algorithm YCSB uses).

/// Generates Zipf-distributed ranks in `[0, n)` with skew `theta`.
///
/// Rank 0 is the most popular item. Deterministic given the caller-supplied
/// uniform randomness, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfianGenerator {
    /// Creates a generator over `n` items with skew `theta` (YCSB: 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; a standard integral approximation beyond
        // (keeps construction O(1) for billion-key spaces).
        const EXACT: u64 = 1 << 20;
        if n <= EXACT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral of x^-theta from EXACT to n.
            head + ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Maps one uniform 64-bit random value to a Zipf rank in `[0, n)`.
    pub fn next(&mut self, uniform: u64) -> u64 {
        let u = (uniform >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The zeta(2, theta) constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mix64;

    fn draw(n: u64, samples: usize) -> Vec<u64> {
        let mut g = ZipfianGenerator::new(n, 0.99);
        (0..samples)
            .map(|i| g.next(mix64(i as u64 ^ 0xABCD)))
            .collect()
    }

    #[test]
    fn ranks_stay_in_range() {
        for rank in draw(1000, 50_000) {
            assert!(rank < 1000);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let ranks = draw(100_000, 100_000);
        let zero = ranks.iter().filter(|&&r| r == 0).count();
        let tail = ranks.iter().filter(|&&r| r > 50_000).count();
        assert!(zero > 1000, "rank 0 drawn only {zero} times");
        assert!(zero > tail, "head must outweigh the deep tail");
    }

    #[test]
    fn frequency_roughly_follows_power_law() {
        let ranks = draw(10_000, 200_000);
        let count = |r: u64| ranks.iter().filter(|&&x| x == r).count() as f64;
        let c0 = count(0);
        let c9 = count(9);
        // f(0)/f(9) should be ~ 10^0.99 ≈ 9.8; allow generous slack.
        let ratio = c0 / c9.max(1.0);
        assert!(
            ratio > 3.0 && ratio < 30.0,
            "rank0/rank9 frequency ratio {ratio}"
        );
    }

    #[test]
    fn huge_domain_constructs_quickly() {
        let g = ZipfianGenerator::new(1 << 40, 0.99);
        assert_eq!(g.n(), 1 << 40);
        assert!(g.zeta2() > 1.0);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        let _ = ZipfianGenerator::new(0, 0.99);
    }
}
