//! YCSB-style workload generation and a multi-threaded simulation driver.
//!
//! Implements the workload mixes of the paper's Table 5 (LOAD, A, B, C, D,
//! F — the paper excludes E because its hash-keyed stores do not support
//! scans; this workspace adds it as [`Workload::E`], 95% scan / 5% insert,
//! runnable against any store whose [`kvapi::KvStore::scan`] is implemented)
//! with the standard YCSB request distributions (scrambled Zipfian with the
//! classic `theta = 0.99`, latest, uniform), plus the driver used by every
//! throughput/latency harness: it runs real OS threads over a store,
//! collects per-operation simulated latencies into histograms, and reports
//! throughput in simulated time (`ops / max-thread-clock`).

mod driver;
mod zipf;

pub use driver::{run, OpKind, RunConfig, RunResult};
pub use zipf::ZipfianGenerator;

use kvapi::mix64;

/// A YCSB request distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform over the key space.
    Uniform,
    /// Scrambled Zipfian (theta = 0.99), YCSB's default hot-key skew.
    Zipfian,
    /// Skewed towards the most recently inserted keys (YCSB-D).
    Latest,
}

/// The workload mixes of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 100% put (unique keys).
    Load,
    /// 50% get / 50% update.
    A,
    /// 95% get / 5% update.
    B,
    /// 100% get.
    C,
    /// Get most recently inserted keys.
    D,
    /// 95% range scan / 5% insert (standard YCSB-E; scan start keys are
    /// Zipfian, scan lengths uniform in `[1, scan_max_len]`). Requires a
    /// store with [`kvapi::KvStore::scan`]; excluded from [`Workload::all`]
    /// so hash-only baselines keep running the Table 5 set.
    E,
    /// 50% get / 50% read-modify-write.
    F,
}

impl Workload {
    /// Fraction of operations that are reads (scans, for YCSB-E).
    pub fn read_fraction(&self) -> f64 {
        match self {
            Workload::Load => 0.0,
            Workload::A => 0.5,
            Workload::B | Workload::E => 0.95,
            Workload::C | Workload::D => 1.0,
            Workload::F => 0.5,
        }
    }

    /// Whether the write half is a read-modify-write (YCSB-F).
    pub fn is_rmw(&self) -> bool {
        matches!(self, Workload::F)
    }

    /// Whether the read half is a range scan (YCSB-E).
    pub fn is_scan(&self) -> bool {
        matches!(self, Workload::E)
    }

    /// Whether writes insert fresh unique keys instead of updating
    /// existing ones (LOAD, and YCSB-E's insert half).
    pub fn inserts_new_keys(&self) -> bool {
        matches!(self, Workload::Load | Workload::E)
    }

    /// The request distribution this workload uses.
    pub fn distribution(&self) -> Distribution {
        match self {
            Workload::D => Distribution::Latest,
            Workload::Load => Distribution::Uniform,
            _ => Distribution::Zipfian,
        }
    }

    /// Parses a workload name (`load`, `a`, `b`, `c`, `d`, `f`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "load" | "ycsb_load" => Some(Workload::Load),
            "a" | "ycsb_a" => Some(Workload::A),
            "b" | "ycsb_b" => Some(Workload::B),
            "c" | "ycsb_c" => Some(Workload::C),
            "d" | "ycsb_d" => Some(Workload::D),
            "e" | "ycsb_e" => Some(Workload::E),
            "f" | "ycsb_f" => Some(Workload::F),
            _ => None,
        }
    }

    /// All workloads in Table 5 order (E is not in Table 5 — run it
    /// explicitly against scan-capable stores).
    pub fn all() -> [Workload; 6] {
        [
            Workload::Load,
            Workload::A,
            Workload::B,
            Workload::C,
            Workload::D,
            Workload::F,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Load => "YCSB_LOAD",
            Workload::A => "YCSB_A",
            Workload::B => "YCSB_B",
            Workload::C => "YCSB_C",
            Workload::D => "YCSB_D",
            Workload::E => "YCSB_E",
            Workload::F => "YCSB_F",
        }
    }
}

/// Per-thread key chooser for a request distribution over `record_count`
/// already-loaded records.
#[derive(Debug)]
pub struct KeyChooser {
    dist: Distribution,
    record_count: u64,
    zipf: Option<ZipfianGenerator>,
    state: u64,
}

impl KeyChooser {
    /// Creates a chooser; `seed` decorrelates threads.
    pub fn new(dist: Distribution, record_count: u64, seed: u64) -> Self {
        let zipf = match dist {
            Distribution::Zipfian | Distribution::Latest => {
                Some(ZipfianGenerator::new(record_count.max(1), 0.99))
            }
            Distribution::Uniform => None,
        };
        Self {
            dist,
            record_count: record_count.max(1),
            zipf,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = mix64(self.state.wrapping_add(0x9E37_79B9_7F4A_7C15));
        self.state
    }

    /// Draws the next key in `[0, record_count)`.
    pub fn next_key(&mut self) -> u64 {
        let u = self.next_u64();
        match self.dist {
            Distribution::Uniform => u % self.record_count,
            Distribution::Zipfian => {
                let rank = self.zipf.as_mut().expect("zipf set").next(u);
                // Scramble so hot keys are spread over the key space
                // (YCSB's ScrambledZipfian).
                mix64(rank) % self.record_count
            }
            Distribution::Latest => {
                // Rank 0 = most recent insert.
                let rank = self.zipf.as_mut().expect("zipf set").next(u);
                self.record_count - 1 - (rank % self.record_count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_mixes_match_table5() {
        assert_eq!(Workload::Load.read_fraction(), 0.0);
        assert_eq!(Workload::A.read_fraction(), 0.5);
        assert_eq!(Workload::B.read_fraction(), 0.95);
        assert_eq!(Workload::C.read_fraction(), 1.0);
        assert!(Workload::F.is_rmw());
        assert_eq!(Workload::D.distribution(), Distribution::Latest);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Workload::parse("YCSB_A"), Some(Workload::A));
        assert_eq!(Workload::parse("load"), Some(Workload::Load));
        assert_eq!(Workload::parse("e"), Some(Workload::E));
        assert_eq!(Workload::parse("YCSB_E"), Some(Workload::E));
        assert_eq!(Workload::parse("g"), None);
    }

    #[test]
    fn ycsb_e_is_scan_heavy_and_inserts() {
        assert_eq!(Workload::E.read_fraction(), 0.95);
        assert!(Workload::E.is_scan());
        assert!(Workload::E.inserts_new_keys());
        assert!(!Workload::E.is_rmw());
        assert_eq!(Workload::E.distribution(), Distribution::Zipfian);
        // Table 5 set stays scan-free for the hash-only baselines.
        assert!(Workload::all().iter().all(|w| !w.is_scan()));
    }

    #[test]
    fn uniform_covers_key_space() {
        let mut kc = KeyChooser::new(Distribution::Uniform, 100, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let k = kc.next_key();
            assert!(k < 100);
            seen.insert(k);
        }
        assert!(seen.len() > 90);
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut kc = KeyChooser::new(Distribution::Zipfian, 10_000, 42);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(kc.next_key()).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest key should take a few percent of all requests.
        assert!(freqs[0] > 2000, "hottest key got {}", freqs[0]);
        // And far more keys than the hot set are touched overall.
        assert!(counts.len() > 1000);
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let mut kc = KeyChooser::new(Distribution::Latest, 10_000, 42);
        let recent = (0..50_000).filter(|_| kc.next_key() >= 9_000).count() as f64 / 50_000.0;
        assert!(
            recent > 0.5,
            "latest distribution should hit the newest 10% more than half the time, got {recent}"
        );
    }

    #[test]
    fn choosers_with_different_seeds_differ() {
        let mut a = KeyChooser::new(Distribution::Uniform, 1 << 30, 1);
        let mut b = KeyChooser::new(Distribution::Uniform, 1 << 30, 2);
        let same = (0..100).filter(|_| a.next_key() == b.next_key()).count();
        assert!(same < 5);
    }
}
