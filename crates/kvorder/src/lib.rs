//! Sharded, epoch-safe ordered DRAM index over live user keys.
//!
//! ChameleonDB's persistent structures are hash-keyed — nothing on media
//! knows key *order* — so range scans need a volatile ordered index
//! maintained beside the hash index and rebuilt on recovery. This crate
//! provides that index: one skiplist per store shard, mutated only by the
//! shard's (externally serialized) write path and traversed lock-free by
//! readers holding an [`EpochDomain`] pin, the same reclamation domain
//! the store already uses for its published views.
//!
//! ## Concurrency contract
//!
//! * **Writers** ([`OrderedIndex::insert`] / [`OrderedIndex::remove`])
//!   serialize per shard on an internal mutex. The store calls them while
//!   already holding its shard mutex, so the inner lock is uncontended —
//!   it exists so a misuse cannot corrupt the list.
//! * **Readers** ([`OrderedIndex::range_from`]) never lock. They traverse
//!   `next` pointers with `Acquire` loads under a pin from the index's
//!   domain. A removed node is unlinked from live predecessors but keeps
//!   its own forward pointers, so an in-flight reader standing on it
//!   walks off safely; the node's memory is only freed once every pin
//!   from before its retirement has dropped (`begin_sync`/`try_sync`).
//!
//! Because a node's forward pointers always reference strictly greater
//! keys and are never rewritten after the node is published, any single
//! traversal yields a **strictly ascending** key sequence even while
//! racing mutations — the store's per-key newest-version probe then
//! filters out anything that died mid-scan.
//!
//! Tower heights are derived deterministically from the key
//! (`mix64`, p = 1/4 per extra level), so a rebuilt index after recovery
//! has byte-identical shape to the one that was lost.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use kvapi::mix64;
use kvsync::{EpochDomain, Pin};
use parking_lot::Mutex;

/// Maximum skiplist tower height. With p = 1/4 this comfortably covers
/// billions of keys (expected height log4 n).
const MAX_HEIGHT: usize = 16;

/// Salt decorrelating tower heights from the store's bucket hashing,
/// which also feeds keys through `mix64`.
const HEIGHT_SALT: u64 = 0x9E6C_63D1_B0A5_F19B;

/// Deterministic tower height for `key`: 1 + (geometric, p = 1/4).
fn tower_height(key: u64) -> usize {
    let h = 1 + (mix64(key ^ HEIGHT_SALT).trailing_zeros() / 2) as usize;
    h.min(MAX_HEIGHT)
}

/// A skiplist node. Fixed-size towers keep allocation simple; at 16
/// levels a node is ~144 bytes, and the index only holds live user keys.
struct Node {
    key: u64,
    height: usize,
    next: [AtomicPtr<Node>; MAX_HEIGHT],
}

impl Node {
    fn boxed(key: u64, height: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            height,
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }))
    }
}

/// One shard's skiplist: a sentinel head plus a writer-side garbage list
/// of removed nodes awaiting epoch quiescence.
struct Shard {
    /// Sentinel; its `key` is never compared.
    head: *mut Node,
    /// Serializes mutations (see module docs). Uncontended in the store,
    /// which already holds its own shard mutex around calls.
    writer: Mutex<()>,
    /// Removed nodes tagged with their retire epoch, freed once the
    /// domain has quiesced past it — the `ViewCell` retired-list pattern.
    garbage: Mutex<Vec<(u64, *mut Node)>>,
    /// Live key count (excludes garbage).
    len: AtomicU64,
}

// SAFETY: nodes are only mutated under `writer`, only freed under the
// epoch protocol, and only ever hold `u64` payloads.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    fn new() -> Self {
        Self {
            head: Node::boxed(0, MAX_HEIGHT),
            writer: Mutex::new(()),
            garbage: Mutex::new(Vec::new()),
            len: AtomicU64::new(0),
        }
    }

    /// Finds, per level, the last node with key `< key` (the head counts
    /// as `-inf`). Returns the predecessor array and the level-0
    /// candidate (first node with key `>= key`, possibly null).
    ///
    /// Called by writers under `self.writer`; all loads are `Acquire` so
    /// the same walk is safe for pinned readers too.
    fn find_preds(&self, key: u64) -> ([*mut Node; MAX_HEIGHT], *mut Node) {
        let mut preds = [self.head; MAX_HEIGHT];
        let mut cur = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                // SAFETY: `cur` is the head or a node reached through
                // published pointers; writers are serialized and readers
                // keep removed nodes alive via the epoch domain.
                let nxt = unsafe { (*cur).next[level].load(Ordering::Acquire) };
                if !nxt.is_null() && unsafe { (*nxt).key } < key {
                    cur = nxt;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        let candidate = unsafe { (*preds[0]).next[0].load(Ordering::Acquire) };
        (preds, candidate)
    }

    /// Inserts `key`; returns `false` if it was already present.
    fn insert(&self, key: u64, domain: &EpochDomain) -> bool {
        let _g = self.writer.lock();
        let (preds, candidate) = self.find_preds(key);
        if !candidate.is_null() && unsafe { (*candidate).key } == key {
            return false;
        }
        let height = tower_height(key);
        let node = Node::boxed(key, height);
        for (level, pred) in preds.iter().enumerate().take(height) {
            // SAFETY: node is private until the publishing store below.
            let succ = unsafe { (**pred).next[level].load(Ordering::Acquire) };
            unsafe { (*node).next[level].store(succ, Ordering::Relaxed) };
        }
        // Publish bottom-up: a reader that sees the node at any level
        // sees its fully-initialized fields via the Release store.
        for (level, pred) in preds.iter().enumerate().take(height) {
            unsafe { (**pred).next[level].store(node, Ordering::Release) };
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        self.collect_garbage(domain);
        true
    }

    /// Removes `key`; returns `false` if it was absent. The node is
    /// retired, not freed: readers pinned before the removal may still
    /// be standing on it.
    fn remove(&self, key: u64, domain: &EpochDomain) -> bool {
        let _g = self.writer.lock();
        let (preds, candidate) = self.find_preds(key);
        if candidate.is_null() || unsafe { (*candidate).key } != key {
            return false;
        }
        let height = unsafe { (*candidate).height };
        // Unlink top-down so a concurrent reader descending the towers
        // cannot step onto the victim at a high level after it vanished
        // from a lower one. The victim's own forward pointers are left
        // intact for readers already standing on it.
        for level in (0..height).rev() {
            // SAFETY: single writer — preds are exactly the nodes linking
            // to the victim at each of its levels.
            let succ = unsafe { (*candidate).next[level].load(Ordering::Acquire) };
            unsafe { (*preds[level]).next[level].store(succ, Ordering::Release) };
        }
        self.len.fetch_sub(1, Ordering::Relaxed);
        let retire_epoch = domain.begin_sync();
        self.garbage.lock().push((retire_epoch, candidate));
        self.collect_garbage(domain);
        true
    }

    /// Frees retired nodes whose grace period has expired.
    fn collect_garbage(&self, domain: &EpochDomain) {
        let mut garbage = self.garbage.lock();
        garbage.retain(|&(epoch, node)| {
            if domain.try_sync(epoch) {
                // SAFETY: no pin from before the retirement remains, so
                // no reader can still reach or stand on this node.
                drop(unsafe { Box::from_raw(node) });
                false
            } else {
                true
            }
        });
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Exclusive access: free the live chain, the garbage, the head.
        unsafe {
            let mut cur = (*self.head).next[0].load(Ordering::Relaxed);
            while !cur.is_null() {
                let nxt = (*cur).next[0].load(Ordering::Relaxed);
                drop(Box::from_raw(cur));
                cur = nxt;
            }
            for (_, node) in self.garbage.get_mut().drain(..) {
                drop(Box::from_raw(node));
            }
            drop(Box::from_raw(self.head));
        }
    }
}

/// A sharded ordered index over `u64` user keys (see module docs).
///
/// Sharding mirrors the store's own key→shard mapping so each shard's
/// write path maintains exactly its own slice of the key space; a scan
/// merges the per-shard ascending cursors.
pub struct OrderedIndex {
    domain: Arc<EpochDomain>,
    shards: Vec<Shard>,
}

impl OrderedIndex {
    /// Creates an empty index with `shards` shards whose readers pin
    /// `domain` — normally the same domain guarding the store's views,
    /// so one pin covers both the scan cursor and the version probes.
    pub fn new(shards: usize, domain: Arc<EpochDomain>) -> Self {
        Self {
            domain,
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// The reclamation domain scans must pin.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Inserts `key` into `shard`; returns `false` if already present.
    pub fn insert(&self, shard: usize, key: u64) -> bool {
        self.shards[shard].insert(key, &self.domain)
    }

    /// Removes `key` from `shard`; returns `false` if absent.
    pub fn remove(&self, shard: usize, key: u64) -> bool {
        self.shards[shard].remove(key, &self.domain)
    }

    /// Whether `key` is currently present in `shard`.
    pub fn contains(&self, shard: usize, key: u64, pin: &Pin<'_>) -> bool {
        self.range_from(shard, key, pin).next() == Some(key)
    }

    /// Ascending cursor over `shard`'s keys `>= start`, valid while
    /// `pin` is held.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is from a different [`EpochDomain`].
    pub fn range_from<'p>(&'p self, shard: usize, start: u64, pin: &'p Pin<'_>) -> RangeIter<'p> {
        assert!(
            ptr::eq(pin.domain(), &*self.domain),
            "pin is from a different EpochDomain"
        );
        let sh = &self.shards[shard];
        let mut cur = sh.head as *const Node;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                // SAFETY: reachable nodes stay allocated while the pin
                // (taken before this walk) is held — see module docs.
                let nxt = unsafe { (*cur).next[level].load(Ordering::Acquire) };
                if !nxt.is_null() && unsafe { (*nxt).key } < start {
                    cur = nxt;
                } else {
                    break;
                }
            }
        }
        let first = unsafe { (*cur).next[0].load(Ordering::Acquire) };
        RangeIter {
            cur: first,
            _pin: std::marker::PhantomData,
        }
    }

    /// Live keys across all shards.
    pub fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate DRAM held by nodes (live + not-yet-reclaimed).
    pub fn dram_bytes(&self) -> u64 {
        let nodes: u64 = self.len() + self.garbage_len() as u64;
        let per = std::mem::size_of::<Node>() as u64;
        nodes * per + self.shards.len() as u64 * per
    }

    /// Retired-but-unreclaimed nodes across shards (diagnostics/tests).
    pub fn garbage_len(&self) -> usize {
        self.shards.iter().map(|s| s.garbage.lock().len()).sum()
    }

    /// Frees whatever retired nodes have quiesced; mutation already does
    /// this, exposed for idle-time reclamation and tests.
    pub fn collect(&self) {
        for sh in &self.shards {
            sh.collect_garbage(&self.domain);
        }
    }
}

impl std::fmt::Debug for OrderedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedIndex")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("garbage", &self.garbage_len())
            .finish()
    }
}

/// Ascending key cursor returned by [`OrderedIndex::range_from`].
pub struct RangeIter<'p> {
    cur: *const Node,
    _pin: std::marker::PhantomData<&'p ()>,
}

impl Iterator for RangeIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: the node is kept alive by the pin this iterator
        // borrows; forward pointers of published nodes never change
        // except to splice in strictly greater keys.
        let key = unsafe { (*self.cur).key };
        self.cur = unsafe { (*self.cur).next[0].load(Ordering::Acquire) };
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(shards: usize) -> OrderedIndex {
        OrderedIndex::new(shards, Arc::new(EpochDomain::new(8)))
    }

    fn scan_all(idx: &OrderedIndex, shard: usize, start: u64) -> Vec<u64> {
        let pin = idx.domain().pin(0);
        idx.range_from(shard, start, &pin).collect()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let idx = index(1);
        for k in [5u64, 1, 9, 3, 7] {
            assert!(idx.insert(0, k));
        }
        assert!(!idx.insert(0, 5), "duplicate insert is a no-op");
        assert_eq!(scan_all(&idx, 0, 0), vec![1, 3, 5, 7, 9]);
        assert_eq!(scan_all(&idx, 0, 4), vec![5, 7, 9]);
        assert_eq!(scan_all(&idx, 0, 10), Vec::<u64>::new());
        assert!(idx.remove(0, 5));
        assert!(!idx.remove(0, 5), "double remove is a no-op");
        assert_eq!(scan_all(&idx, 0, 0), vec![1, 3, 7, 9]);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn range_start_is_inclusive() {
        let idx = index(1);
        idx.insert(0, 10);
        idx.insert(0, 20);
        assert_eq!(scan_all(&idx, 0, 10), vec![10, 20]);
        assert_eq!(scan_all(&idx, 0, 11), vec![20]);
    }

    #[test]
    fn boundary_keys() {
        let idx = index(1);
        idx.insert(0, 0);
        idx.insert(0, u64::MAX);
        assert_eq!(scan_all(&idx, 0, 0), vec![0, u64::MAX]);
        assert_eq!(scan_all(&idx, 0, u64::MAX), vec![u64::MAX]);
    }

    #[test]
    fn shards_are_independent() {
        let idx = index(4);
        idx.insert(0, 1);
        idx.insert(3, 2);
        assert_eq!(scan_all(&idx, 0, 0), vec![1]);
        assert_eq!(scan_all(&idx, 3, 0), vec![2]);
        assert_eq!(scan_all(&idx, 1, 0), Vec::<u64>::new());
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn tower_heights_are_deterministic_and_geometric() {
        let mut counts = [0usize; MAX_HEIGHT + 1];
        for k in 0..100_000u64 {
            assert_eq!(tower_height(k), tower_height(k));
            counts[tower_height(k)] += 1;
        }
        // ~3/4 of keys at height 1, ~3/16 at height 2.
        assert!(counts[1] > 70_000, "height-1 fraction: {}", counts[1]);
        assert!(counts[2] > 12_000 && counts[2] < 25_000);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let idx = index(1);
        for k in 0..10 {
            idx.insert(0, k);
        }
        let pin = idx.domain().pin(0);
        let mut iter = idx.range_from(0, 0, &pin);
        assert_eq!(iter.next(), Some(0));
        for k in 0..10 {
            idx.remove(0, k);
        }
        assert!(idx.garbage_len() > 0, "pre-pin removals must be retired");
        // The in-flight iterator still walks the retired chain safely.
        let rest: Vec<u64> = iter.collect();
        assert_eq!(rest, (1..10).collect::<Vec<u64>>());
        drop(pin);
        idx.collect();
        assert_eq!(idx.garbage_len(), 0, "unpinned garbage must free");
    }

    #[test]
    fn dram_bytes_tracks_population() {
        let idx = index(2);
        let empty = idx.dram_bytes();
        for k in 0..1000 {
            idx.insert((k % 2) as usize, k);
        }
        assert!(idx.dram_bytes() >= empty + 1000 * 64);
    }

    #[test]
    #[should_panic(expected = "different EpochDomain")]
    fn cross_domain_pin_is_rejected() {
        let idx = index(1);
        let other = EpochDomain::new(2);
        let pin = other.pin(0);
        let _ = idx.range_from(0, 0, &pin);
    }

    /// Readers continuously range-scan while a writer churns half the
    /// key space; every observed sequence must be strictly ascending,
    /// contain every stable key in its window, and contain nothing that
    /// was never inserted.
    #[test]
    fn concurrent_scan_stress() {
        use std::sync::atomic::AtomicBool;

        let idx = Arc::new(index(1));
        // Stable keys: even numbers, inserted up front, never removed.
        for k in (0..2000u64).step_by(2) {
            idx.insert(0, k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for reader in 0..3usize {
                let idx = Arc::clone(&idx);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut rounds = 0u32;
                    while !stop.load(Ordering::Relaxed) || rounds < 50 {
                        rounds += 1;
                        let pin = idx.domain().pin(reader);
                        let keys: Vec<u64> = idx.range_from(0, 0, &pin).take(500).collect();
                        let mut prev = None;
                        let mut evens = 0u64;
                        for &k in &keys {
                            assert!(k < 2001, "phantom key {k}");
                            if let Some(p) = prev {
                                assert!(k > p, "not ascending: {p} then {k}");
                            }
                            prev = Some(k);
                            if k % 2 == 0 {
                                // Stable keys must be contiguous: this
                                // even key is the next expected one.
                                assert_eq!(k, evens * 2, "missed stable key");
                                evens += 1;
                            }
                        }
                        if rounds >= 50 && stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                });
            }
            let idx2 = Arc::clone(&idx);
            let stop2 = Arc::clone(&stop);
            s.spawn(move || {
                // Churn odd keys in and out.
                for round in 0..200u64 {
                    for k in (1..2000u64).step_by(2) {
                        if round % 2 == 0 {
                            idx2.insert(0, k);
                        } else {
                            idx2.remove(0, k);
                        }
                    }
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        idx.collect();
        // All readers gone: everything retired must eventually free.
        idx.domain().synchronize();
        idx.collect();
        assert_eq!(idx.garbage_len(), 0);
    }
}
