//! Replica side of primary→replica log shipping (ISSUE 10 tentpole).
//!
//! A [`Replica`] owns a fresh [`ChameleonDb`] image and keeps it converged
//! with a primary `kvserver` by subscribing to the primary's replication
//! stream: it sends `REPL_SUBSCRIBE` over the ordinary length-prefixed
//! wire protocol, then applies every `REPL_BATCH` frame in ship-index
//! order through [`ChameleonDb::apply_batch`] and confirms it with
//! `REPL_ACK`. Alongside the apply loop the replica runs its own
//! read-only [`KvServer`] (`read_only: true`), so clients can point GET /
//! SCAN / STATS at the replica while PUT / DELETE / SYNC are refused.
//!
//! Three monotone floors ([`ReplicaFloors`]) describe the replica's
//! position in the stream and feed the primary-visible `REPL_FLOOR`
//! responses, the replica's obs snapshot (`repl` section), and the
//! windowed telemetry:
//!
//! - `received` — highest ship index read off the wire,
//! - `applied`  — highest ship index durably applied to the local store,
//! - `acked`    — highest ship index confirmed back to the primary.
//!
//! Because the apply loop is a single thread that applies a chunk before
//! acking it, `received ≥ applied ≥ acked` never inverts by more than the
//! one chunk in flight, and an ack is always backed by a completed local
//! apply — the property the primary's `replica-quorum` ack policy leans
//! on for durability.
//!
//! **Promotion.** [`Replica::promote`] turns the replica into a primary:
//! it severs the subscription, drains the read-only front-end, and
//! restarts a writable [`KvServer`] over the *same* store image. The
//! promoted image is exactly the shipped prefix the replica had applied —
//! the log-prefix-cut invariant audited by `repro replicate`.

use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use chameleon_obs::ServerObs;
use chameleondb::ChameleonDb;
use kvserver::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use kvserver::repl::batch_of_rep_ops;
use kvserver::{KvServer, ReplicaFloors, ServerConfig};
use pmem_sim::{PmemDevice, ThreadCtx};

/// `ThreadCtx` worker index for the apply thread. Stores use the index
/// modulo their per-thread resource counts, so any fixed value is safe;
/// a large one keeps the replica's apply traffic off the contexts the
/// read-only front-end's own threads hash to.
const APPLY_THREAD_ID: usize = 4093;

/// Why and how far the apply loop ran, returned when a replica is
/// stopped or promoted.
#[derive(Debug, Clone)]
pub struct ApplyStats {
    /// `REPL_BATCH` chunks applied.
    pub batches: u64,
    /// Individual operations applied across those chunks.
    pub ops: u64,
    /// Why the loop exited: `None` for a clean local stop (socket shut
    /// down by [`Replica::stop`]/[`Replica::promote`]), otherwise the
    /// remote error or disconnect reason.
    pub disconnect: Option<String>,
}

/// A promoted replica: the writable server now running over the formerly
/// read-only image, plus everything needed to keep using it.
pub struct Promoted {
    pub server: KvServer,
    pub store: Arc<ChameleonDb>,
    pub dev: Arc<PmemDevice>,
    pub obs: Arc<ServerObs>,
    /// Final floors at promotion time; `applied` is the ship prefix the
    /// promoted image contains.
    pub floors: Arc<ReplicaFloors>,
    pub apply_stats: ApplyStats,
}

struct ApplyHandle {
    join: JoinHandle<ApplyStats>,
    /// Clone of the subscription stream; shutting it down makes the
    /// blocking `read_frame` in the apply loop return EOF.
    stop: TcpStream,
}

/// A running replica process: apply loop plus read-only front-end.
pub struct Replica {
    dev: Arc<PmemDevice>,
    store: Arc<ChameleonDb>,
    obs: Arc<ServerObs>,
    floors: Arc<ReplicaFloors>,
    cfg: ServerConfig,
    server: Option<KvServer>,
    addr: SocketAddr,
    apply: Option<ApplyHandle>,
}

impl Replica {
    /// Connects to `primary`, subscribes from the first unapplied ship
    /// index, and starts the read-only front-end on `listen` (use port 0
    /// for an ephemeral port). The subscribe handshake completes before
    /// this returns, so a refusal ("history trimmed", "replica does not
    /// serve subscriptions") surfaces here rather than asynchronously.
    ///
    /// `base_cfg` seeds the front-end's [`ServerConfig`]; `read_only` and
    /// `replica_floors` are forced regardless of what it says.
    pub fn start(
        primary: SocketAddr,
        listen: &str,
        dev: Arc<PmemDevice>,
        store: Arc<ChameleonDb>,
        base_cfg: ServerConfig,
    ) -> io::Result<Self> {
        let floors = Arc::new(ReplicaFloors::new());
        let mut cfg = base_cfg;
        cfg.read_only = true;
        cfg.replica_floors = Some(Arc::clone(&floors));

        // Subscribe synchronously: the primary answers REPL_SUBSCRIBE
        // with a REPL_FLOOR carrying our subscriber id before any batch.
        let mut stream = TcpStream::connect(primary)?;
        stream.set_nodelay(true)?;
        let start_ship = floors.applied.load(Ordering::Acquire) + 1;
        write_frame(
            &mut stream,
            &encode_request(&Request::ReplSubscribe {
                req_id: 1,
                start_ship,
            }),
        )?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let sub_id = match read_reply(&mut reader)? {
            Response::ReplFloor { sub_id, .. } => sub_id,
            Response::Err { message, .. } => {
                return Err(io::Error::other(format!("subscribe refused: {message}")))
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected subscribe reply: {other:?}"
                )))
            }
        };

        let obs = Arc::new(ServerObs::new());
        let server = KvServer::start(
            listen,
            Arc::clone(&dev),
            Arc::clone(&store),
            Arc::clone(&obs),
            cfg.clone(),
        )?;
        let addr = server.local_addr();

        let stop = stream.try_clone()?;
        let join = {
            let store = Arc::clone(&store);
            let floors = Arc::clone(&floors);
            let cost = Arc::clone(&cfg.cost);
            thread::Builder::new()
                .name("repl-apply".to_owned())
                .spawn(move || apply_loop(stream, reader, store, floors, cost, sub_id))?
        };

        Ok(Self {
            dev,
            store,
            obs,
            floors,
            cfg,
            server: Some(server),
            addr,
            apply: Some(ApplyHandle { join, stop }),
        })
    }

    /// Address of the read-only front-end.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replica's stream floors.
    pub fn floors(&self) -> &Arc<ReplicaFloors> {
        &self.floors
    }

    /// The replica's store image.
    pub fn store(&self) -> &Arc<ChameleonDb> {
        &self.store
    }

    /// Highest ship index applied to the local image.
    pub fn applied(&self) -> u64 {
        self.floors.applied.load(Ordering::Acquire)
    }

    /// Blocks until the applied floor reaches `ship`. Returns `false` on
    /// timeout (e.g. the primary died before shipping that far).
    pub fn wait_applied(&self, ship: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied() < ship {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Stops the apply loop and the read-only front-end, returning the
    /// apply stats. The store image is left at the applied prefix.
    pub fn stop(mut self) -> Result<ApplyStats, String> {
        let stats = self.halt_apply();
        if let Some(server) = self.server.take() {
            server.shutdown()?;
        }
        Ok(stats)
    }

    /// Fails the replica over to primary duty: severs the subscription,
    /// drains the read-only server, and restarts a writable [`KvServer`]
    /// on `listen` over the same store image. The image served by the
    /// returned server is exactly the shipped prefix this replica had
    /// applied (`floors.applied`) — nothing more, nothing less.
    pub fn promote(mut self, listen: &str) -> Result<Promoted, String> {
        let apply_stats = self.halt_apply();
        if let Some(server) = self.server.take() {
            server.shutdown()?;
        }
        let mut cfg = self.cfg.clone();
        cfg.read_only = false;
        cfg.replica_floors = None;
        let server = KvServer::start(
            listen,
            Arc::clone(&self.dev),
            Arc::clone(&self.store),
            Arc::clone(&self.obs),
            cfg,
        )
        .map_err(|e| format!("promote: rebind failed: {e}"))?;
        Ok(Promoted {
            server,
            store: Arc::clone(&self.store),
            dev: Arc::clone(&self.dev),
            obs: Arc::clone(&self.obs),
            floors: Arc::clone(&self.floors),
            apply_stats,
        })
    }

    fn halt_apply(&mut self) -> ApplyStats {
        match self.apply.take() {
            Some(h) => {
                let _ = h.stop.shutdown(Shutdown::Both);
                h.join.join().unwrap_or(ApplyStats {
                    batches: 0,
                    ops: 0,
                    disconnect: Some("apply thread panicked".to_owned()),
                })
            }
            None => ApplyStats {
                batches: 0,
                ops: 0,
                disconnect: None,
            },
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.halt_apply();
        if let Some(server) = self.server.take() {
            let _ = server.shutdown();
        }
    }
}

/// Reads and decodes one response frame, mapping EOF and decode errors
/// into `io::Error`.
fn read_reply(reader: &mut impl Read) -> io::Result<Response> {
    match read_frame(reader)? {
        Some(payload) => {
            decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))
        }
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "primary closed the subscription",
        )),
    }
}

/// The subscription loop: apply each shipped chunk, then ack it. Acks
/// ride the same socket (the primary answers each with a plain OK, which
/// the loop drains and ignores).
fn apply_loop(
    mut stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    store: Arc<ChameleonDb>,
    floors: Arc<ReplicaFloors>,
    cost: Arc<pmem_sim::CostModel>,
    sub_id: u64,
) -> ApplyStats {
    let mut ctx = ThreadCtx::for_thread(cost, APPLY_THREAD_ID);
    let mut stats = ApplyStats {
        batches: 0,
        ops: 0,
        disconnect: None,
    };
    let mut ack_req = 2u64; // req_id 1 was the subscribe
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean EOF: either a local stop() shut the socket down or
            // the primary went away at a frame boundary. Both end the
            // stream without error; promote() decides what comes next.
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                stats.disconnect = Some("primary died mid-frame".to_owned());
                break;
            }
            Err(e) => {
                stats.disconnect = Some(format!("subscription read failed: {e}"));
                break;
            }
        };
        let resp = match decode_response(&payload) {
            Ok(r) => r,
            Err(e) => {
                stats.disconnect = Some(format!("undecodable frame: {}", e.0));
                break;
            }
        };
        match resp {
            Response::ReplBatch { ship, ops, .. } => {
                floors.received.store(ship, Ordering::Release);
                let batch = batch_of_rep_ops(ops);
                match store.apply_batch(&mut ctx, &batch) {
                    Ok(_) => {}
                    Err(e) => {
                        stats.disconnect = Some(format!("apply failed at ship {ship}: {e:?}"));
                        break;
                    }
                }
                floors.applied.store(ship, Ordering::Release);
                stats.batches += 1;
                stats.ops += batch.len() as u64;
                let ack = encode_request(&Request::ReplAck {
                    req_id: ack_req,
                    sub_id,
                    ship,
                });
                ack_req += 1;
                if let Err(e) = write_frame(&mut stream, &ack).and_then(|()| stream.flush()) {
                    stats.disconnect = Some(format!("ack write failed: {e}"));
                    break;
                }
                floors.acked.store(ship, Ordering::Release);
            }
            // The primary's answer to a REPL_ACK.
            Response::Ok { .. } => {}
            // Floor reports are harmless if the primary volunteers one.
            Response::ReplFloor { .. } => {}
            Response::Err { message, .. } => {
                stats.disconnect = Some(format!("primary error: {message}"));
                break;
            }
            other => {
                stats.disconnect = Some(format!("unexpected frame on subscription: {other:?}"));
                break;
            }
        }
    }
    stats
}
