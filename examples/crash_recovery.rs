//! Crash recovery: demonstrate the persistence domain and the §2.3
//! restart-time trade-off of Write-Intensive Mode.
//!
//! The example loads a store, injects a power failure (dropping every
//! un-fenced cache line and all DRAM state), recovers from media alone, and
//! reports the simulated restart time — once for normal operation and once
//! for a crash during Write-Intensive Mode, which must replay the log.
//!
//! Run with: `cargo run --release -p chameleondb --example crash_recovery`

use chameleondb::{ChameleonConfig, ChameleonDb, Mode};
use kvapi::KvStore;
use pmem_sim::{PmemDevice, ThreadCtx};

const KEYS: u64 = 300_000;

fn main() {
    for wim in [false, true] {
        let mode = if wim {
            "Write-Intensive Mode"
        } else {
            "Normal mode"
        };
        println!("=== crash during {mode} ===");

        let dev = PmemDevice::optane(2 << 30);
        let mut cfg = ChameleonConfig::with_shards(64);
        cfg.write_intensive = wim;
        let db = ChameleonDb::create(dev.clone(), cfg.clone()).expect("create");
        let mut ctx = ThreadCtx::with_default_cost();
        for k in 0..KEYS {
            db.put(&mut ctx, k, &k.to_le_bytes()).expect("put");
        }
        db.sync(&mut ctx).expect("sync");
        println!(
            "loaded {KEYS} keys in mode {:?}; {} MemTable flushes, {} WIM merges",
            db.mode(),
            db.metrics().flushes,
            db.metrics().wim_merges
        );
        drop(db);

        // Power failure: all volatile state is gone. Un-fenced lines in the
        // simulated persistence domain are rolled back.
        dev.crash();

        let mut rctx = ThreadCtx::with_default_cost();
        cfg.write_intensive = false;
        let db = ChameleonDb::recover(dev.clone(), cfg, &mut rctx).expect("recover");
        println!(
            "restart took {:.2}ms simulated ({} keys recovered)",
            rctx.clock.now() as f64 / 1e6,
            db.approx_len()
        );

        // Everything synced before the crash is intact.
        let mut out = Vec::new();
        for k in 0..KEYS {
            assert!(
                db.get(&mut rctx, k, &mut out).expect("get"),
                "key {k} lost in crash!"
            );
        }
        println!("all {KEYS} keys verified after restart\n");

        // The recovered store is fully operational, including mode changes.
        db.set_mode(Mode::WriteIntensive);
        db.put(&mut rctx, KEYS + 1, b"post-crash write")
            .expect("put");
        assert!(db.get(&mut rctx, KEYS + 1, &mut out).expect("get"));
    }
    println!("Note: the WIM restart is slower because the ABI contents were");
    println!("never persisted as L0 tables and must be replayed from the log");
    println!("(§2.3's trade of restart time for put performance).");
}
