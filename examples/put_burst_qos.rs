//! QoS under a put burst: the dynamic Get-Protect Mode (§2.4).
//!
//! Two threads share a store under the device's shared-queue contention
//! model: one issues gets and tracks windowed p99 latency, the other
//! injects a put burst midway. With GPM enabled, the store detects the
//! latency spike, suspends compactions, dumps the ABI instead of merging
//! it, and the tail latency is capped.
//!
//! Run with: `cargo run --release -p chameleondb --example put_burst_qos`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use chameleondb::{ChameleonConfig, ChameleonDb, GpmConfig};
use kvapi::KvStore;
use pmem_sim::{CostModel, Histogram, PmemDevice, ThreadCtx};

const KEYS: u64 = 200_000;
const GETS: u64 = 400_000;
const BURST_PUTS: u64 = 300_000;

fn run_one(gpm_enabled: bool) -> (u64, u64, u64) {
    let dev = PmemDevice::optane(2 << 30);
    let mut cfg = ChameleonConfig::with_shards(64);
    cfg.gpm = GpmConfig {
        enabled: gpm_enabled,
        // Scaled for this small demo: the paper's production threshold is
        // 2000ns; our two-thread burst peaks lower than 16-thread bursts.
        enter_threshold_ns: 800,
        exit_threshold_ns: 700,
        window_ops: 512,
    };
    let db = Arc::new(ChameleonDb::create(dev.clone(), cfg).expect("create"));

    // Warm up.
    let mut ctx = ThreadCtx::with_default_cost();
    for k in 0..KEYS {
        db.put(&mut ctx, k, &k.to_le_bytes()).expect("put");
    }
    db.sync(&mut ctx).expect("sync");

    // Burst phase under the shared-queue contention model.
    dev.set_queue_model(true);
    dev.set_active_threads(2);
    let cost = Arc::new(CostModel::default());
    let stop = AtomicBool::new(false);
    // The putter waits here until the getter has finished its quiet phase,
    // then fast-forwards its clock to the getter's instant so both sides
    // share one timeline.
    let burst_start = Barrier::new(2);
    let burst_instant = AtomicU64::new(0);

    let (quiet_p99, burst_p99) = crossbeam::thread::scope(|s| {
        let getter = {
            let db = Arc::clone(&db);
            let cost = Arc::clone(&cost);
            let stop = &stop;
            let burst_start = &burst_start;
            let burst_instant = &burst_instant;
            s.spawn(move |_| {
                let mut ctx = ThreadCtx::for_thread(cost, 0);
                let mut out = Vec::new();
                let mut rng = 7u64;
                let mut quiet = Histogram::new();
                let mut burst = Histogram::new();
                for i in 0..GETS {
                    if i == GETS / 4 {
                        // Quiet phase done: release the put burst.
                        burst_instant.store(ctx.clock.now(), Ordering::Relaxed);
                        burst_start.wait();
                    }
                    rng = kvapi::mix64(rng);
                    let t0 = ctx.clock.now();
                    db.get(&mut ctx, rng % KEYS, &mut out).expect("get");
                    let lat = ctx.clock.now() - t0;
                    if i < GETS / 4 {
                        quiet.record(lat);
                    } else if !stop.load(Ordering::Relaxed) {
                        burst.record(lat);
                    } else {
                        break;
                    }
                }
                (quiet.quantile(0.99), burst.quantile(0.99))
            })
        };
        let putter = {
            let db = Arc::clone(&db);
            let cost = Arc::clone(&cost);
            let stop = &stop;
            let burst_start = &burst_start;
            let burst_instant = &burst_instant;
            s.spawn(move |_| {
                burst_start.wait();
                // Start the burst at the getter's current instant.
                let mut ctx = ThreadCtx::for_thread(cost, 1);
                ctx.clock.catch_up_to(burst_instant.load(Ordering::Relaxed));
                let mut rng = 99u64;
                for i in 0..BURST_PUTS {
                    rng = kvapi::mix64(rng);
                    db.put(&mut ctx, rng % KEYS, &i.to_le_bytes()).expect("put");
                }
                stop.store(true, Ordering::Relaxed);
            })
        };
        putter.join().expect("putter");
        getter.join().expect("getter")
    })
    .expect("scope");

    (quiet_p99, burst_p99, db.metrics().abi_dumps)
}

fn main() {
    println!("Get tail latency with a concurrent put burst (simulated ns):\n");
    for gpm in [false, true] {
        let (quiet, burst, dumps) = run_one(gpm);
        println!(
            "GPM {}: quiet p99 = {quiet}ns, burst p99 = {burst}ns ({:.2}x), ABI dumps: {dumps}",
            if gpm { "on " } else { "off" },
            burst as f64 / quiet.max(1) as f64,
        );
    }
    println!("\nWith GPM on, compactions are suspended during the spike (and a full");
    println!("ABI would be dumped to Pmem unmerged instead of paying a last-level");
    println!("merge). The effect grows with burst size — run the full experiment");
    println!("with: cargo run --release -p chameleon-bench --bin repro -- fig16");
}
