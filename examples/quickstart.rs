//! Quickstart: create a ChameleonDB on a simulated Optane device, put/get
//! /delete some keys, and inspect the cost and traffic accounting.
//!
//! Run with: `cargo run --release -p chameleondb --example quickstart`

use chameleondb::{ChameleonConfig, ChameleonDb};
use kvapi::KvStore;
use pmem_sim::{PmemDevice, ThreadCtx};

fn main() {
    // A 1GB simulated Optane Pmem device. Every byte written below really
    // lands in its arena; only time is virtual.
    let dev = PmemDevice::optane(1 << 30);

    // Table 1 geometry scaled to 64 shards (paper: 16384). Shard count is
    // the only scaled parameter; MemTable/ABI/level shapes are the paper's.
    let db =
        ChameleonDb::create(dev.clone(), ChameleonConfig::with_shards(64)).expect("create store");

    // Each thread drives the store through its own context, which carries
    // the simulated clock.
    let mut ctx = ThreadCtx::with_default_cost();

    println!("Inserting 200k keys...");
    for k in 0..200_000u64 {
        db.put(&mut ctx, k, format!("value-{k}").as_bytes())
            .expect("put");
    }

    let mut out = Vec::new();
    assert!(db.get(&mut ctx, 1234, &mut out).expect("get"));
    println!("get(1234) -> {:?}", String::from_utf8_lossy(&out));

    assert!(db.delete(&mut ctx, 1234).expect("delete"));
    assert!(!db.get(&mut ctx, 1234, &mut out).expect("get"));
    println!("key 1234 deleted");

    // Throughput in *simulated* time.
    let elapsed = ctx.clock.now();
    println!(
        "\nsimulated time: {:.2}ms -> {:.2} Mops/s (single thread)",
        elapsed as f64 / 1e6,
        200_002.0 * 1e3 / elapsed as f64
    );

    // The store's own view of where gets were answered and how much
    // maintenance it did.
    let m = db.metrics();
    println!(
        "flushes: {}, mid compactions: {}, last-level compactions: {}",
        m.flushes, m.mid_compactions, m.last_compactions
    );

    // The device's media accounting (what ipmwatch would report).
    let s = dev.stats().snapshot();
    println!(
        "media written: {:.1}MB for {:.1}MB logical -> write amplification {:.2}",
        s.media_bytes_written as f64 / 1e6,
        s.logical_bytes_written as f64 / 1e6,
        s.write_amplification()
    );
    println!(
        "DRAM footprint (MemTables + ABIs): {:.1}MB",
        db.dram_footprint() as f64 / 1e6
    );
}
