//! Store shootout: drive all six §3.2 store designs through the same
//! YCSB-A workload and compare throughput, footprint, and media traffic.
//!
//! Run with: `cargo run --release -p chameleon-bench --example store_shootout`

use chameleon_bench::experiments::{load_store, run_workload};
use chameleon_bench::stores::{self, Scale, StoreKind};
use ycsb::Workload;

fn main() {
    let keys: u64 = 400_000;
    let ops: u64 = 200_000;
    let threads = 8;
    let scale = Scale {
        keys,
        value_size: 8,
        extra_ops: ops,
    };

    println!("YCSB-A (50% get / 50% update, Zipfian) over {keys} records, {threads} threads:\n");
    println!(
        "{:>16} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "store", "load Mops", "A Mops", "DRAM", "write WA", "read amp"
    );
    for kind in StoreKind::all() {
        let built = stores::build(kind, scale);
        let load = load_store(built.store.as_ref(), &built.dev, keys, threads);
        built.dev.stats().reset();
        let a = run_workload(
            built.store.as_ref(),
            &built.dev,
            Workload::A,
            keys,
            ops,
            threads,
        );
        let stats = built.dev.stats().snapshot();
        println!(
            "{:>16} {:>10.2} {:>10.2} {:>12} {:>8.2} {:>8.2}",
            kind.name(),
            load.mops(),
            a.mops(),
            format!("{:.1}MB", built.store.dram_footprint() as f64 / 1e6),
            stats.write_amplification(),
            stats.read_amplification(),
        );
    }
    println!("\nEach store runs on its own simulated Optane device; media");
    println!("traffic is accounted at the 256B XPLine granularity.");
}
