//! Offline vendored shim for `criterion`.
//!
//! Implements the macro/builder surface the workspace's benches use, with
//! criterion's CLI convention: the harness only benchmarks when invoked with
//! `--bench` (which `cargo bench` passes). Under `cargo test`, bench targets
//! are built and run without `--bench`, and this shim exits immediately —
//! bench setup (store preloading) is far too slow for the test profile.
//! Measurements are wall-clock means over `sample_size` samples with an
//! adaptively chosen iteration count; there is no statistical analysis or
//! HTML report. See `compat/README.md`.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Label for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Uses the parameter's `Display` form as the benchmark name.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self(p.to_string())
    }

    /// Function name + parameter, as in real criterion.
    pub fn new<P: Display>(function: &str, p: P) -> Self {
        Self(format!("{function}/{p}"))
    }
}

/// Top-level harness handle passed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(BenchmarkId(name.to_string()), |b| f(b));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the per-sample iteration count until one sample
        // costs at least ~5ms, so Instant overhead is negligible.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || b.iters >= 1 << 20 {
                break;
            }
            b.iters *= 2;
        }
        let samples = self.criterion.sample_size;
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..samples {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            best = best.min(b.elapsed);
        }
        let mean_ns = total.as_nanos() as f64 / (samples as u64 * b.iters) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.2} Melem/s)", n as f64 / mean_ns * 1e9 / 1e6)
            }
            Some(Throughput::Bytes(n)) => format!(
                " ({:.2} MiB/s)",
                n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0)
            ),
            None => String::new(),
        };
        println!(
            "  {:<28} {:>12.1} ns/iter{} [{} samples x {} iters]",
            id.0, mean_ns, rate, samples, b.iters
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a bench group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `fn main()` for a `harness = false` bench target. Benchmarks
/// only run when `--bench` is passed (i.e. under `cargo bench`); `cargo
/// test` builds and invokes the target without it, which is a no-op.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !::std::env::args().any(|a| a == "--bench") {
                return;
            }
            $($group();)+
        }
    };
}
