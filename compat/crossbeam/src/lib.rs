//! Offline vendored shim for the `crossbeam` crate.
//!
//! Only the `crossbeam::thread::scope` API surface used by this workspace is
//! provided, implemented on top of `std::thread::scope` (stable since Rust
//! 1.63). See `compat/README.md` for why external dependencies are vendored
//! as shims.

pub mod thread {
    //! Scoped threads with crossbeam's API shape: the scope closure and each
    //! spawned closure receive a `&Scope`, and `scope()` returns
    //! `Result<R>` capturing whether any spawned thread panicked.

    /// Result type of [`scope`]: `Err` carries the panic payload of the
    /// first panicking child thread (crossbeam collects all payloads; one is
    /// enough for every caller in this workspace, which only `.expect()`s).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle that can spawn threads borrowing from the enclosing
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// `&Scope` so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let reentrant = Scope { inner };
                f(&reentrant)
            }))
        }
    }

    /// Creates a scope in which threads borrowing non-`'static` data can be
    /// spawned. All spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam (which catches child panics and reports them in the
    /// `Err` variant while unjoined handles are silently reaped), the std
    /// backend propagates a panic from an *unjoined* child after joining the
    /// rest; explicitly joined handles behave identically. Every caller in
    /// this workspace joins all handles, so the difference is unobservable.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let total = AtomicU64::new(0);
            let n = super::scope(|s| {
                let handles: Vec<_> = (0..4u64)
                    .map(|i| {
                        let total = &total;
                        s.spawn(move |_| {
                            total.fetch_add(i, Ordering::Relaxed);
                            i
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("child"))
                    .sum::<u64>()
            })
            .expect("scope");
            assert_eq!(n, 6);
            assert_eq!(total.load(Ordering::Relaxed), 6);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let r = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 21).join().expect("grandchild") * 2)
                    .join()
                    .expect("child")
            })
            .expect("scope");
            assert_eq!(r, 42);
        }
    }
}
