//! Offline vendored shim for `serde_derive`: `#[derive(Serialize)]` for
//! structs with named fields, generating an impl of the shim `serde`
//! crate's value-tree `Serialize` trait (see `compat/README.md`).
//!
//! Implemented directly on `proc_macro::TokenTree` — no `syn`/`quote`
//! available offline. Token-tree iteration (rather than string parsing)
//! keeps attribute payloads such as doc comments, which may contain
//! arbitrary punctuation, safely encapsulated in their `Group`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (a `to_value(&self) -> Value`
/// method) for a struct with named fields.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(src) => src.parse().expect("generated impl must tokenize"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        other => {
            return Err(format!(
                "this Serialize shim only supports structs, found {:?}",
                other.map(|t| t.to_string())
            ))
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    // Generics would need propagation into the impl header; no serialized
    // struct in this workspace is generic.
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("Serialize shim: generic struct {name} unsupported"));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "Serialize shim: {name} must be a struct with named fields"
            ))
        }
    };

    let fields = field_names(body)?;
    let mut entries = String::new();
    for f in &fields {
        entries.push_str(&format!(
            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    ))
}

/// Collects the field names of a named-field struct body, skipping
/// attributes, visibility, and types (tracking `<...>` depth so commas
/// inside generic arguments do not split fields; commas inside tuple types
/// are invisible here because parentheses form their own `Group`).
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
            }
            other => return Err(format!("expected field name, found `{other}`")),
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("Serialize shim: tuple structs unsupported".into()),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past any `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's [...] group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional restriction, e.g. pub(crate)
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}
