//! Offline vendored shim for `serde_json`: renders the shim `serde` crate's
//! [`Value`] tree as pretty-printed JSON (2-space indent, the same layout
//! real `to_writer_pretty` produces). See `compat/README.md`.

use std::io::{self, Write};

use serde::{Serialize, Value};

/// Serialization error (I/O only — the value tree cannot itself fail).
pub type Error = io::Error;
/// Result alias matching `serde_json::Result`.
pub type Result<T> = io::Result<T>;

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: ?Sized + Serialize>(mut writer: W, value: &T) -> Result<()> {
    write_value(&mut writer, &value.to_value(), 0)
}

/// Serializes `value` as a pretty JSON string.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut buf = Vec::new();
    to_writer_pretty(&mut buf, value)?;
    Ok(String::from_utf8(buf).expect("JSON output is UTF-8"))
}

fn write_value<W: Write>(w: &mut W, v: &Value, indent: usize) -> Result<()> {
    match v {
        Value::Null => write!(w, "null"),
        Value::Bool(b) => write!(w, "{b}"),
        Value::UInt(n) => write!(w, "{n}"),
        Value::Int(n) => write!(w, "{n}"),
        Value::Float(f) if f.is_finite() => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep a trailing ".0" so round floats stay visibly floats.
                write!(w, "{f:.1}")
            } else {
                write!(w, "{f}")
            }
        }
        // JSON has no NaN/Infinity; serde_json emits null as well.
        Value::Float(_) => write!(w, "null"),
        Value::Str(s) => write_string(w, s),
        Value::Array(items) => {
            if items.is_empty() {
                return write!(w, "[]");
            }
            writeln!(w, "[")?;
            for (i, item) in items.iter().enumerate() {
                pad(w, indent + 1)?;
                write_value(w, item, indent + 1)?;
                writeln!(w, "{}", if i + 1 < items.len() { "," } else { "" })?;
            }
            pad(w, indent)?;
            write!(w, "]")
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return write!(w, "{{}}");
            }
            writeln!(w, "{{")?;
            for (i, (k, item)) in entries.iter().enumerate() {
                pad(w, indent + 1)?;
                write_string(w, k)?;
                write!(w, ": ")?;
                write_value(w, item, indent + 1)?;
                writeln!(w, "{}", if i + 1 < entries.len() { "," } else { "" })?;
            }
            pad(w, indent)?;
            write!(w, "}}")
        }
    }
}

fn pad<W: Write>(w: &mut W, indent: usize) -> Result<()> {
    for _ in 0..indent {
        write!(w, "  ")?;
    }
    Ok(())
}

fn write_string<W: Write>(w: &mut W, s: &str) -> Result<()> {
    write!(w, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(w, "\\\"")?,
            '\\' => write!(w, "\\\\")?,
            '\n' => write!(w, "\\n")?,
            '\r' => write!(w, "\\r")?,
            '\t' => write!(w, "\\t")?,
            c if (c as u32) < 0x20 => write!(w, "\\u{:04x}", c as u32)?,
            c => write!(w, "{c}")?,
        }
    }
    write!(w, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Str("x\"y".into()), Value::Float(2.5)]),
            ),
            ("c".into(), Value::Object(vec![])),
        ]);
        let mut out = Vec::new();
        write_value(&mut out, &v, 0).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(
            s,
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\\\"y\",\n    2.5\n  ],\n  \"c\": {}\n}"
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        struct F(f64);
        impl Serialize for F {
            fn to_value(&self) -> Value {
                Value::Float(self.0)
            }
        }
        assert_eq!(to_string_pretty(&F(3.0)).unwrap(), "3.0");
        assert_eq!(to_string_pretty(&F(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn u64_timestamps_roundtrip_textually() {
        let big = 9_223_372_036_854_775_999u64; // > 2^63, > 2^53
        assert_eq!(to_string_pretty(&big).unwrap(), big.to_string());
    }
}
