//! Offline shim for the `libc` crate: exactly the raw bindings this
//! workspace uses, declared directly against the C runtime every Rust
//! binary already links. Linux-only (the only platform this workspace
//! targets); constants are the x86-64/aarch64 Linux values.
//!
//! Surface: `poll(2)` readiness multiplexing, anonymous pipes for
//! cross-thread wakeups, and the `fcntl` calls needed to make those
//! pipes nonblocking. Sockets keep using `std::net`; only readiness
//! notification needs to drop below the standard library.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_short = i16;
pub type c_ulong = u64;
pub type nfds_t = c_ulong;

/// One entry in a `poll(2)` set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

/// Data may be read without blocking.
pub const POLLIN: c_short = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (revents only).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: c_short = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: c_short = 0x020;

pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    /// Blocks until one of `fds` is ready, `timeout` milliseconds pass
    /// (`-1` = forever), or a signal arrives. Returns the ready count,
    /// `0` on timeout, `-1` on error (`EINTR` included).
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    /// Creates an anonymous pipe: `fds[0]` is the read end, `fds[1]` the
    /// write end.
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    pub fn close(fd: c_int) -> c_int;
    /// Marks `fd` as a passive socket with the given accept backlog.
    /// Legal on an already-listening socket (updates the backlog), which
    /// is how the server widens std's default beyond 128.
    pub fn listen(fd: c_int, backlog: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trip_and_poll_readiness() {
        let mut fds = [-1 as c_int; 2];
        assert_eq!(unsafe { pipe(fds.as_mut_ptr()) }, 0);
        let (r, w) = (fds[0], fds[1]);

        // Empty pipe: poll with a zero timeout reports nothing ready.
        let mut set = [pollfd {
            fd: r,
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(unsafe { poll(set.as_mut_ptr(), 1, 0) }, 0);

        // One byte in: POLLIN within a bounded wait.
        assert_eq!(unsafe { write(w, [0xAAu8].as_ptr(), 1) }, 1);
        set[0].revents = 0;
        assert_eq!(unsafe { poll(set.as_mut_ptr(), 1, 1000) }, 1);
        assert_ne!(set[0].revents & POLLIN, 0);

        let mut buf = [0u8; 4];
        assert_eq!(unsafe { read(r, buf.as_mut_ptr(), buf.len()) }, 1);
        assert_eq!(buf[0], 0xAA);

        unsafe {
            close(r);
            close(w);
        }
    }

    #[test]
    fn fcntl_sets_nonblocking() {
        let mut fds = [-1 as c_int; 2];
        assert_eq!(unsafe { pipe(fds.as_mut_ptr()) }, 0);
        let r = fds[0];
        let flags = unsafe { fcntl(r, F_GETFL, 0) };
        assert!(flags >= 0);
        assert_eq!(unsafe { fcntl(r, F_SETFL, flags | O_NONBLOCK) }, 0);
        // Reading an empty nonblocking pipe fails immediately instead of
        // hanging this test forever.
        let mut buf = [0u8; 1];
        assert_eq!(unsafe { read(r, buf.as_mut_ptr(), 1) }, -1);
        unsafe {
            close(fds[0]);
            close(fds[1]);
        }
    }
}
