//! Offline vendored shim for the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by minimal API-compatible
//! shims (see `compat/README.md`). This one maps `parking_lot`'s
//! `Mutex`/`RwLock` onto `std::sync`, ignoring lock poisoning the same way
//! `parking_lot` does (a panic while holding the lock does not poison it for
//! later users).

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable with `parking_lot`'s in-place-guard API
/// (`wait` takes `&mut MutexGuard` instead of consuming and returning
/// the guard the way `std::sync::Condvar::wait` does).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases the guarded mutex and waits for a
    /// notification; the lock is re-held when this returns. Spurious
    /// wakeups are possible, exactly as with `std` and `parking_lot` —
    /// callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and hands back a fresh one;
        // bridge that to parking_lot's `&mut` shape by moving the guard
        // out and back through raw pointers. `std::sync::Condvar::wait`
        // does not unwind (the poison case is mapped below), so exactly
        // one live guard exists at every exit from this block.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.0.wait(owned).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] whose `timed_out()` reports whether the wait
    /// ended by timeout rather than notification. Spurious wakeups are
    /// possible either way — callers must re-check their predicate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // Same guard-ownership bridge as `wait` above; `wait_timeout`
        // does not unwind (poison mapped below).
        unsafe {
            let owned = std::ptr::read(guard);
            let (reacquired, res) = self
                .0
                .wait_timeout(owned, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
            WaitTimeoutResult(res.timed_out())
        }
    }
}

/// Result of a timed condvar wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn wait_for_wakes_on_notify() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        while !*g {
            let res = cv.wait_for(&mut g, std::time::Duration::from_secs(5));
            if res.timed_out() {
                break;
            }
        }
        assert!(*g, "notification should arrive well within the timeout");
        t.join().unwrap();
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must remain usable after a panic");
    }
}
