//! Offline vendored shim for the `rand` crate (0.8 API subset).
//!
//! Provides exactly what this workspace's tests use: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open integer
//! ranges, and `Rng::gen_bool`. The generator is splitmix64 — statistically
//! fine for test-input generation, NOT cryptographic. See
//! `compat/README.md`.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[start, end)`; panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let width = (end as i128).wrapping_sub(start as i128) as u128;
                assert!(width > 0, "cannot sample from empty range");
                // Modulo bias is at most width/2^64 — irrelevant for the
                // tiny ranges used in tests.
                let off = ((rng.next_u64() as u128) % width) as i128;
                ((start as i128) + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample(rng, self.start, self.end)
    }
}

/// Types drawable from the full-domain "standard" distribution, for
/// [`Rng::gen`].
pub trait Standard {
    /// Draws an unconstrained value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::draw(rng) as i128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Buffers fillable with random bytes, for [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for chunk in self.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Full-domain draw, e.g. `rng.gen::<u64>()`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Fills `dest` with random data, e.g. `rng.fill(&mut buf[..])`.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        // 2^-64 resolution, same as rand's canonical float path.
        (self.next_u64() as f64) < p * 18_446_744_073_709_551_616.0
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood; public domain reference).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_full_u64_span() {
        let mut r = StdRng::seed_from_u64(1);
        let mut hi = 0u64;
        for _ in 0..1000 {
            hi = hi.max(r.gen_range(1u64..u64::MAX));
        }
        assert!(hi > u64::MAX / 2, "samples never reached the upper half");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.85)).count();
        assert!((8000..9000).contains(&heads), "got {heads}/10000 at p=0.85");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
