//! Offline vendored shim for `serde`.
//!
//! Real serde's visitor architecture is far more than this workspace needs;
//! the shim reduces serialization to one question — "what JSON-shaped value
//! tree does this type produce?" — which is all `serde_json::to_writer_pretty`
//! and the bench artifact writer require. See `compat/README.md`.

/// A JSON-shaped value tree, the target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers keep full `u64` precision (simulated-clock
    /// timestamps exceed 2^53, so routing them through `f64` would corrupt
    /// them).
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (declaration order of the struct).
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Produces the value tree for `self`.
    fn to_value(&self) -> Value;
}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(42u64.to_value(), Value::UInt(42));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
        assert_eq!(
            vec![(1u64, 2u64)].to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::UInt(2)])])
        );
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 1;
        assert_eq!(big.to_value(), Value::UInt(big));
    }
}
