//! Offline vendored shim for `proptest`.
//!
//! Supports the macro surface this workspace's property tests use:
//! `proptest! { #![proptest_config(...)] fn f(x in strategy, y: Type) {...} }`,
//! `prop_assert!`/`prop_assert_eq!`, integer-range / tuple / `collection::vec`
//! / `bool::ANY` strategies, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design (see `compat/README.md`):
//! inputs are generated from a deterministic splitmix64 stream seeded by the
//! test's module path (every run exercises the same cases, like a seeded
//! fuzzer), and there is **no shrinking** — a failure reports the case
//! number and assertion message only.

/// Run-count configuration, honoring `ProptestConfig::with_cases(n)`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim halves twice since the
        // stream is deterministic anyway (no coverage from re-running).
        Self { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic input stream and the error type threaded out of
    //! `prop_assert!`.

    use std::fmt;

    /// Failure raised by `prop_assert!`/`prop_assert_eq!`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps an assertion message.
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// splitmix64 stream seeded from a test identifier: deterministic
    /// across runs and machines so CI failures reproduce locally.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a stable string (the shim passes
        /// `module_path!()::test_name`).
        pub fn deterministic(id: &str) -> Self {
            // FNV-1a over the id bytes.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in id.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next value of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, width)`.
        pub fn below(&mut self, width: u128) -> u128 {
            assert!(width > 0, "empty range");
            (self.next_u64() as u128) % width
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value from `rng`'s deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    ((self.start as i128) + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of another strategy's values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    //! Type-driven generation for `name: Type` parameters.

    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(param in strategy, other: Type)`
/// becomes a `#[test]` that generates inputs for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $crate::proptest!(@bind __rng, $($params)*);
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __e,
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng $(, $($rest)*)?);
    };
    (@bind $rng:ident, $var:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $var: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng $(, $($rest)*)?);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r,
                );
            }
        }
    };
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..3, z: u64) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
            let _ = z;
        }

        #[test]
        fn vec_strategy_obeys_len(v in crate::collection::vec((0u8..4, crate::bool::ANY), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for (n, _b) in v {
                prop_assert!(n < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(flag in crate::bool::ANY) {
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }

    #[test]
    fn failure_reports_case_and_message() {
        let err = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u64..10) {
                    prop_assert_eq!(x, 12345u64);
                }
            }
            always_fails();
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("failed at case 1/4"), "got: {msg}");
        assert!(msg.contains("12345"), "got: {msg}");
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = crate::test_runner::TestRng::deterministic("id");
        let mut b = crate::test_runner::TestRng::deterministic("id");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
